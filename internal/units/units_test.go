package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerOverTime(t *testing.T) {
	e := (2 * Milliwatt).OverTime(300 * Nanosecond)
	want := 600e-12
	if math.Abs(e.Joules()-want) > 1e-18 {
		t.Fatalf("2mW over 300ns = %v J, want %v", e.Joules(), want)
	}
}

func TestEnergyOverTime(t *testing.T) {
	p := (660 * Picojoule).OverTime(300 * Nanosecond)
	want := 2.2e-3
	if math.Abs(p.Watts()-want) > 1e-12 {
		t.Fatalf("660pJ/300ns = %v W, want %v", p.Watts(), want)
	}
	if got := Energy(1).OverTime(0); got != 0 {
		t.Fatalf("energy over zero time = %v, want 0", got)
	}
	if got := Energy(1).OverTime(-1); got != 0 {
		t.Fatalf("energy over negative time = %v, want 0", got)
	}
}

func TestDurationPerSecond(t *testing.T) {
	if got := (100 * Millisecond).PerSecond(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("rate of 100ms period = %v, want 10", got)
	}
	if got := Duration(0).PerSecond(); !math.IsInf(got, 1) {
		t.Fatalf("rate of zero period = %v, want +Inf", got)
	}
}

func TestFrequencyPeriod(t *testing.T) {
	p := (1.37 * Gigahertz).Period()
	want := 1 / 1.37e9
	if math.Abs(p.Seconds()-want) > 1e-20 {
		t.Fatalf("period of 1.37GHz = %v, want %v", p.Seconds(), want)
	}
	if got := Frequency(0).Period(); !math.IsInf(got.Seconds(), 1) {
		t.Fatalf("period of 0Hz = %v, want +Inf", got)
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		got  string
		want string
	}{
		{(563.2 * Milliwatt).String(), "563.2mW"},
		{(660 * Picojoule).String(), "660pJ"},
		{(300 * Nanosecond).String(), "300ns"},
		{(1.37 * Gigahertz).String(), "1.37GHz"},
		{(1553.4 * Nanometer).String(), "1.553µm"},
		{Power(0).String(), "0W"},
		{(16 * Kibibyte).String(), "16KiB"},
		{(32 * Mebibyte).String(), "32MiB"},
		{(604.6 * SquareMillimeter).String(), "604.6mm²"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestSIFormatExtremes(t *testing.T) {
	if got := siFormat(math.Inf(1), "W"); got != "+InfW" {
		t.Errorf("siFormat(+Inf) = %q", got)
	}
	if got := siFormat(1e-18, "J"); got != "1e-18J" {
		t.Errorf("siFormat(1e-18) = %q", got)
	}
	if got := siFormat(-2.2e-3, "W"); got != "-2.2mW" {
		t.Errorf("siFormat(-2.2mW) = %q", got)
	}
}

// Property: power→energy→power round-trips for positive durations.
func TestQuickEnergyPowerRoundTrip(t *testing.T) {
	f := func(pw float64, dur float64) bool {
		p := Power(math.Abs(pw))
		d := Duration(math.Abs(dur) + 1e-9)
		if math.IsInf(float64(p), 0) || float64(p) > 1e30 || float64(d) > 1e30 {
			return true // out of modelled range
		}
		back := p.OverTime(d).OverTime(d)
		return math.Abs(back.Watts()-p.Watts()) <= 1e-9*math.Max(1, p.Watts())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SI formatting never produces an empty string and always ends with
// the unit symbol.
func TestQuickSIFormatTotal(t *testing.T) {
	f := func(v float64) bool {
		s := siFormat(v, "X")
		return len(s) > 1 && s[len(s)-1] == 'X'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorGetters(t *testing.T) {
	if (2 * Milliwatt).Milliwatts() != 2 {
		t.Error("Milliwatts")
	}
	if (3 * Picojoule).Picojoules() != 3 {
		t.Error("Picojoules")
	}
	if got := (5 * Nanosecond).Nanoseconds(); math.Abs(got-5) > 1e-9 {
		t.Error("Nanoseconds")
	}
	if (7 * Hertz).Hertz() != 7 {
		t.Error("Hertz")
	}
	if (2 * Meter).Meters() != 2 {
		t.Error("Meters")
	}
	if got := (4 * Nanometer).Nanometers(); math.Abs(got-4) > 1e-9 {
		t.Error("Nanometers")
	}
	if (2 * Meter).Times(3) != 6*Meter {
		t.Error("Times")
	}
	if (8 * Byte).Bytes() != 8 {
		t.Error("Bytes")
	}
	if got := (2 * Gibibyte).String(); got != "2GiB" {
		t.Errorf("GiB formatting = %q", got)
	}
}
