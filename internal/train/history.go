package train

import (
	"fmt"

	"trident/internal/core"
	"trident/internal/dataset"
	"trident/internal/report"
)

// History records per-epoch training metrics — the data behind a
// convergence curve.
type History struct {
	Epoch    []float64
	Loss     []float64 // mean training loss per epoch
	Accuracy []float64 // held-out accuracy per epoch
}

// Len returns the number of recorded epochs.
func (h *History) Len() int { return len(h.Epoch) }

// Figure renders the history as a two-series figure (loss and accuracy
// against epoch).
func (h *History) Figure(title string) *report.Figure {
	return &report.Figure{
		Title:  title,
		XLabel: "epoch",
		YLabel: "value",
		Series: []report.Series{
			report.NewSeries("train loss", h.Epoch, h.Loss),
			report.NewSeries("test accuracy", h.Epoch, h.Accuracy),
		},
	}
}

// RunInSituWithHistory trains the standard two-layer in-situ classifier
// recording a convergence curve: mean loss and held-out accuracy after
// every epoch.
func RunInSituWithHistory(data *dataset.Set, hidden, epochs int, lr float64, noisy bool) (*History, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	if epochs < 1 {
		return nil, fmt.Errorf("train: epochs %d must be ≥ 1", epochs)
	}
	trainSet, testSet := data.Split(0.8)
	dim := trainSet.Inputs[0].Len()
	net, err := core.NewNetwork(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: !noisy, NoiseSeed: 11},
		LearningRate: lr,
	},
		core.LayerSpec{In: dim, Out: hidden, Activate: true},
		core.LayerSpec{In: hidden, Out: data.Classes},
	)
	if err != nil {
		return nil, err
	}
	h := &History{}
	for e := 0; e < epochs; e++ {
		var lossSum float64
		for i := range trainSet.Inputs {
			loss, err := net.TrainSample(trainSet.Inputs[i].Data(), trainSet.Labels[i])
			if err != nil {
				return nil, err
			}
			lossSum += loss
		}
		correct := 0
		for i := range testSet.Inputs {
			cls, err := net.Predict(testSet.Inputs[i].Data())
			if err != nil {
				return nil, err
			}
			if cls == testSet.Labels[i] {
				correct++
			}
		}
		h.Epoch = append(h.Epoch, float64(e+1))
		h.Loss = append(h.Loss, lossSum/float64(trainSet.Len()))
		h.Accuracy = append(h.Accuracy, float64(correct)/float64(testSet.Len()))
	}
	return h, nil
}
