package train

import (
	"math"
	"testing"

	"trident/internal/dataset"
	"trident/internal/device"
	"trident/internal/models"
)

// TestTableVShape checks the Table V reproduction: Trident trains faster
// than the Xavier on MobileNetV2, ResNet-50 and VGG-16 (the paper's three
// wins), with the VGG-16 margin the largest — the weight-heavy model where
// avoiding optimizer memory traffic pays most.
func TestTableVShape(t *testing.T) {
	rows, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]TableVRow{}
	for _, r := range rows {
		byName[r.Model] = r
		if r.Xavier <= 0 || r.Trident <= 0 {
			t.Errorf("%s: non-positive training times", r.Model)
		}
	}
	for _, m := range []string{"MobileNetV2", "ResNet-50", "VGG-16"} {
		if byName[m].PercentChange >= 0 {
			t.Errorf("%s: Trident should be faster (paper Table V), got %+.1f%%", m, byName[m].PercentChange)
		}
	}
	if math.Abs(byName["MobileNetV2"].PercentChange-(-8.5)) > 10 {
		t.Errorf("MobileNetV2 change = %+.1f%%, paper -8.5%%", byName["MobileNetV2"].PercentChange)
	}
	if math.Abs(byName["VGG-16"].PercentChange-(-38.5)) > 15 {
		t.Errorf("VGG-16 change = %+.1f%%, paper -38.5%%", byName["VGG-16"].PercentChange)
	}
}

// TestTableVMagnitudes: wall-clock times must be in the paper's ballpark —
// tens of seconds for MobileNetV2 up to hundreds for VGG-16.
func TestTableVMagnitudes(t *testing.T) {
	rows, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Model {
		case "MobileNetV2":
			if r.Trident.Seconds() < 10 || r.Trident.Seconds() > 100 {
				t.Errorf("MobileNetV2 Trident = %v, want tens of seconds", r.Trident)
			}
		case "VGG-16":
			if r.Trident.Seconds() < 200 || r.Trident.Seconds() > 2500 {
				t.Errorf("VGG-16 Trident = %v, want hundreds of seconds", r.Trident)
			}
			if r.Trident.Seconds() < rows[0].Trident.Seconds() {
				t.Error("VGG-16 must take longest to train")
			}
		}
	}
}

// TestStepTimesOrdering: training a sample costs more than inferring one
// (three passes plus updates).
func TestStepTimesOrdering(t *testing.T) {
	m := models.MobileNetV2()
	ts, err := TridentStepTime(m)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := XavierStepTime(m)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 || xs <= 0 {
		t.Fatal("step times must be positive")
	}
	// Bigger models train slower on both accelerators.
	tv, err := TridentStepTime(models.VGG16())
	if err != nil {
		t.Fatal(err)
	}
	if tv <= ts {
		t.Error("VGG-16 step must exceed MobileNetV2 step on Trident")
	}
}

// TestRunInSituLearns: the functional in-situ trainer reaches high accuracy
// on separable data and spends most of its energy on GST tuning.
func TestRunInSituLearns(t *testing.T) {
	data := dataset.Blobs(150, 3, 6, 0.1, 7)
	res, err := RunInSitu(data, 16, 10, 0.08, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy < 0.85 {
		t.Errorf("in-situ test accuracy = %.2f, want ≥ 0.85", res.TestAccuracy)
	}
	if res.Energy <= 0 {
		t.Error("energy ledger empty")
	}
	if res.TuningShare < 0.5 {
		t.Errorf("tuning share = %.2f, expected dominant per Table III", res.TuningShare)
	}
	if _, err := RunInSitu(&dataset.Set{}, 4, 1, 0.1, false); err == nil {
		t.Error("empty dataset: want error")
	}
}

// TestRunInSituBatchedLearns: the minibatch schedule must learn the same
// task through the batched reprogram-free backward path, and a batch of
// one must reproduce the per-sample RunInSitu schedule exactly — same
// noise draws, same weight trajectory, same ledger.
func TestRunInSituBatchedLearns(t *testing.T) {
	data := dataset.Blobs(150, 3, 6, 0.1, 7)
	res, err := RunInSituBatched(data, 16, 10, 0.08, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy < 0.85 {
		t.Errorf("batched in-situ test accuracy = %.2f, want ≥ 0.85", res.TestAccuracy)
	}
	if res.Energy <= 0 {
		t.Error("energy ledger empty")
	}
	single, err := RunInSitu(data, 16, 4, 0.08, true)
	if err != nil {
		t.Fatal(err)
	}
	batchOne, err := RunInSituBatched(data, 16, 4, 0.08, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if *single != *batchOne {
		t.Errorf("batch-of-one run diverged from per-sample run:\n  single %+v\n  batched %+v", single, batchOne)
	}
	if _, err := RunInSituBatched(&dataset.Set{}, 4, 1, 0.1, 4, false); err == nil {
		t.Error("empty dataset: want error")
	}
}

// TestRunInSituWithNoise: analog noise must not destroy learning.
func TestRunInSituWithNoise(t *testing.T) {
	data := dataset.Blobs(150, 3, 6, 0.1, 9)
	res, err := RunInSitu(data, 16, 10, 0.08, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy < 0.80 {
		t.Errorf("noisy in-situ accuracy = %.2f, want ≥ 0.80", res.TestAccuracy)
	}
}

// TestRunMismatch reproduces the Section I motivation quantitatively on a
// tight-margin classification task: mapping offline-trained weights onto
// 6-bit thermal hardware (quantization + crosstalk-scale variation) loses
// real accuracy, while the 8-bit GST mapping is nearly lossless.
func TestRunMismatch(t *testing.T) {
	data := dataset.Blobs(1000, 12, 6, 0.35, 5)
	res, err := RunMismatch(data, 24, 30, 0.1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.FloatAccuracy < 0.8 {
		t.Fatalf("digital reference accuracy = %.2f, too low to measure mismatch", res.FloatAccuracy)
	}
	drop8 := res.FloatAccuracy - res.EightBit
	drop6 := res.FloatAccuracy - res.SixBit
	if drop8 > 0.01 {
		t.Errorf("8-bit mapping drop = %.3f, want ≈ lossless (≤0.01)", drop8)
	}
	if drop6 < 0.01 {
		t.Errorf("6-bit mapping drop = %.3f, want a visible loss (≥0.01)", drop6)
	}
	if res.EightBit < res.SixBit {
		t.Errorf("8-bit accuracy %.3f below 6-bit %.3f — resolution ordering broken",
			res.EightBit, res.SixBit)
	}
	if _, err := RunMismatch(&dataset.Set{}, 4, 1, 0.1, 1); err == nil {
		t.Error("empty dataset: want error")
	}
}

// TestDigitalBaseline matches the in-situ architecture digitally.
func TestDigitalBaseline(t *testing.T) {
	data := dataset.Blobs(150, 3, 6, 0.1, 7)
	acc := DigitalBaselineAccuracy(data, 16, 10, 0.08, 3)
	if acc < 0.85 {
		t.Errorf("digital baseline accuracy = %.2f, want ≥ 0.85", acc)
	}
}

// TestQuantizationErrorOrdering: the 6-bit thermal error is ≈4× the 8-bit
// GST error — the resolution argument in numbers.
func TestQuantizationErrorOrdering(t *testing.T) {
	e8 := QuantizationErrorAtBits(device.GSTBits)
	e6 := QuantizationErrorAtBits(device.ThermalBits)
	if e8 <= 0 || e6 <= 0 {
		t.Fatal("errors must be positive")
	}
	ratio := e6 / e8
	if ratio < 3 || ratio > 5 {
		t.Errorf("6-bit/8-bit RMS error ratio = %.2f, want ≈4", ratio)
	}
}

// TestRunQATRecoversLowBitLoss: quantization-aware fine-tuning recovers a
// large share of the accuracy that post-training quantization loses at
// aggressive bit widths — and therefore separates the *quantization* part
// of the paper's mismatch argument from the *device variation* part, which
// no training flow can anticipate offline.
func TestRunQATRecoversLowBitLoss(t *testing.T) {
	for _, seed := range []int64{5, 13} {
		data := dataset.Blobs(1000, 12, 6, 0.35, seed)
		r, err := RunQAT(data, 24, 30, 0.1, 2, 21)
		if err != nil {
			t.Fatal(err)
		}
		if r.FloatAccuracy < 0.8 {
			t.Fatalf("seed %d: float reference %.2f too low", seed, r.FloatAccuracy)
		}
		if r.FloatAccuracy-r.PostTraining < 0.2 {
			t.Errorf("seed %d: 2-bit PTQ drop only %.2f — regime miscalibrated",
				seed, r.FloatAccuracy-r.PostTraining)
		}
		if r.QAT < r.PostTraining+0.1 {
			t.Errorf("seed %d: QAT %.2f did not recover ≥0.1 over PTQ %.2f",
				seed, r.QAT, r.PostTraining)
		}
	}
	if _, err := RunQAT(&dataset.Set{}, 4, 1, 0.1, 4, 1); err == nil {
		t.Error("empty dataset: want error")
	}
	if _, err := RunQAT(dataset.Blobs(20, 2, 2, 0.1, 1), 4, 1, 0.1, 99, 1); err == nil {
		t.Error("bad bit width: want error")
	}
}

// TestInSituHistory: the convergence curve falls in loss and rises in
// accuracy over the run.
func TestInSituHistory(t *testing.T) {
	data := dataset.Blobs(150, 3, 6, 0.1, 7)
	h, err := RunInSituWithHistory(data, 16, 8, 0.08, false)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 8 {
		t.Fatalf("epochs recorded = %d, want 8", h.Len())
	}
	if h.Loss[len(h.Loss)-1] >= h.Loss[0] {
		t.Errorf("loss did not fall: %v → %v", h.Loss[0], h.Loss[len(h.Loss)-1])
	}
	if h.Accuracy[len(h.Accuracy)-1] < h.Accuracy[0] {
		t.Errorf("accuracy fell: %v → %v", h.Accuracy[0], h.Accuracy[len(h.Accuracy)-1])
	}
	fig := h.Figure("convergence")
	if len(fig.Series) != 2 || len(fig.Series[0].X) != 8 {
		t.Error("figure malformed")
	}
	if _, err := RunInSituWithHistory(&dataset.Set{}, 4, 1, 0.1, false); err == nil {
		t.Error("empty dataset: want error")
	}
	if _, err := RunInSituWithHistory(data, 4, 0, 0.1, false); err == nil {
		t.Error("zero epochs: want error")
	}
}
