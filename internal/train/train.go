// Package train implements the training-side evaluation of the paper:
//
//   - the Table V estimate of wall-clock time to train 50,000 images on the
//     two training-capable accelerators (Trident and the NVIDIA AGX
//     Xavier), derived — as the paper does — from inference throughput
//     plus the training-specific overheads of each architecture;
//   - helpers that run real in-situ training on the functional Trident
//     model (internal/core) against a digital reference, including the
//     trained-offline-then-mapped mismatch experiment that motivates
//     unified training/inference hardware in Section I.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"trident/internal/accel"
	"trident/internal/core"
	"trident/internal/dataflow"
	"trident/internal/dataset"
	"trident/internal/device"
	"trident/internal/fixed"
	"trident/internal/models"
	"trident/internal/nn"
	"trident/internal/units"
)

// TrainingImages is the corpus size of Table V.
const TrainingImages = 50000

// MiniBatch is the weight-update granularity assumed for the Table V
// estimate: gradients accumulate over MiniBatch samples before the banks
// (or DRAM-resident weights) are rewritten.
const MiniBatch = 8

// PassesPerSample is the number of array sweeps one backpropagation step
// needs: the forward pass, the gradient-vector pass (Wᵀδ) and the
// outer-product pass (δh·yᵀ) — the three columns of Table II.
const PassesPerSample = 3

// TridentStepTime returns the per-sample training time on Trident: three
// streaming sweeps of the model plus the three bank reprogramming sweeps
// (forward, transpose and broadcast layouts) amortized over the mini-batch.
func TridentStepTime(m *models.Model) (units.Duration, error) {
	cfg := accel.Trident()
	mp, err := dataflow.Map(m, cfg.Geometry())
	if err != nil {
		return 0, err
	}
	period := device.ClockRate.Period().Seconds()
	stream := float64(mp.TotalStreamCycles()) * accel.VectorCyclesPerSymbol * period
	tune := float64(mp.TotalWaves()) * cfg.TuneTime.Seconds()
	step := PassesPerSample*stream + PassesPerSample*tune/MiniBatch
	return units.Duration(step), nil
}

// XavierStepTime returns the per-sample training time on the AGX Xavier:
// three compute sweeps plus the optimizer's weight traffic (read weights,
// write gradients, write updated weights) amortized over the mini-batch.
func XavierStepTime(m *models.Model) (units.Duration, error) {
	cfg := accel.AGXXavier()
	r, err := accel.EvaluateElectronic(cfg, m)
	if err != nil {
		return 0, err
	}
	optimizerBytes := 4 * float64(m.TotalWeights()) // fp8/int8 weights + fp16 state
	optim := optimizerBytes / cfg.MemoryBandwidth / MiniBatch
	step := PassesPerSample*r.Latency.Seconds() + optim
	return units.Duration(step), nil
}

// TableVRow is one row of the training-time comparison.
type TableVRow struct {
	Model         string
	Xavier        units.Duration
	Trident       units.Duration
	PercentChange float64 // (Trident − Xavier)/Xavier × 100, negative = Trident faster
}

// TableV computes the time to train TrainingImages images for the Table V
// model set.
func TableV() ([]TableVRow, error) {
	set := []*models.Model{
		models.MobileNetV2(), models.GoogleNet(), models.ResNet50(), models.VGG16(),
	}
	var rows []TableVRow
	for _, m := range set {
		ts, err := TridentStepTime(m)
		if err != nil {
			return nil, err
		}
		xs, err := XavierStepTime(m)
		if err != nil {
			return nil, err
		}
		tTotal := units.Duration(ts.Seconds() * TrainingImages)
		xTotal := units.Duration(xs.Seconds() * TrainingImages)
		rows = append(rows, TableVRow{
			Model:         m.Name,
			Xavier:        xTotal,
			Trident:       tTotal,
			PercentChange: (tTotal.Seconds() - xTotal.Seconds()) / xTotal.Seconds() * 100,
		})
	}
	return rows, nil
}

// InSituResult summarizes a functional in-situ training run.
type InSituResult struct {
	TrainAccuracy float64
	TestAccuracy  float64
	FinalLoss     float64
	Energy        units.Energy
	TuningShare   float64 // fraction of energy spent programming GST
}

// RunInSitu trains a two-layer GST-activated network on the hardware model
// and evaluates it. The network is sized dim → hidden → classes.
func RunInSitu(data *dataset.Set, hidden, epochs int, lr float64, noisy bool) (*InSituResult, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	trainSet, testSet := data.Split(0.8)
	dim := trainSet.Inputs[0].Len()
	net, err := core.NewNetwork(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: !noisy, NoiseSeed: 11},
		LearningRate: lr,
	},
		core.LayerSpec{In: dim, Out: hidden, Activate: true},
		core.LayerSpec{In: hidden, Out: data.Classes},
	)
	if err != nil {
		return nil, err
	}
	var loss float64
	for e := 0; e < epochs; e++ {
		for i := range trainSet.Inputs {
			loss, err = net.TrainSample(trainSet.Inputs[i].Data(), trainSet.Labels[i])
			if err != nil {
				return nil, err
			}
		}
	}
	acc := func(s *dataset.Set) (float64, error) {
		if s.Len() == 0 {
			return 0, nil
		}
		correct := 0
		for i := range s.Inputs {
			cls, err := net.Predict(s.Inputs[i].Data())
			if err != nil {
				return 0, err
			}
			if cls == s.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(s.Len()), nil
	}
	trainAcc, err := acc(trainSet)
	if err != nil {
		return nil, err
	}
	testAcc, err := acc(testSet)
	if err != nil {
		return nil, err
	}
	led := net.Ledger()
	return &InSituResult{
		TrainAccuracy: trainAcc,
		TestAccuracy:  testAcc,
		FinalLoss:     loss,
		Energy:        led.TotalEnergy(),
		TuningShare:   led.Energy(core.CatGSTTuning).Joules() / led.TotalEnergy().Joules(),
	}, nil
}

// RunInSituBatched is RunInSitu with minibatch SGD: each epoch walks the
// training set in batches of the given size through Graph.TrainBatch — one
// batched forward, reprogram-free transpose GEMMs on the backward walk, and
// one mean-gradient update per layer per batch — so the banks reprogram
// once per batch instead of once per sample. batch ≤ 1 degrades to the
// per-sample schedule of RunInSitu (bit-identically: a batch of one IS a
// TrainSample step). The trailing partial batch is trained at its natural
// size.
func RunInSituBatched(data *dataset.Set, hidden, epochs int, lr float64, batch int, noisy bool) (*InSituResult, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	if batch < 1 {
		batch = 1
	}
	trainSet, testSet := data.Split(0.8)
	dim := trainSet.Inputs[0].Len()
	net, err := core.NewNetwork(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: !noisy, NoiseSeed: 11},
		LearningRate: lr,
	},
		core.LayerSpec{In: dim, Out: hidden, Activate: true},
		core.LayerSpec{In: hidden, Out: data.Classes},
	)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, batch*dim)
	labels := make([]int, 0, batch)
	var loss float64
	for e := 0; e < epochs; e++ {
		for at := 0; at < trainSet.Len(); at += batch {
			end := min(at+batch, trainSet.Len())
			labels = labels[:0]
			for i := at; i < end; i++ {
				copy(xs[(i-at)*dim:(i-at+1)*dim], trainSet.Inputs[i].Data())
				labels = append(labels, trainSet.Labels[i])
			}
			loss, err = net.TrainBatch(xs[:(end-at)*dim], labels)
			if err != nil {
				return nil, err
			}
		}
	}
	acc := func(s *dataset.Set) (float64, error) {
		if s.Len() == 0 {
			return 0, nil
		}
		correct := 0
		for i := range s.Inputs {
			cls, err := net.Predict(s.Inputs[i].Data())
			if err != nil {
				return 0, err
			}
			if cls == s.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(s.Len()), nil
	}
	trainAcc, err := acc(trainSet)
	if err != nil {
		return nil, err
	}
	testAcc, err := acc(testSet)
	if err != nil {
		return nil, err
	}
	led := net.Ledger()
	return &InSituResult{
		TrainAccuracy: trainAcc,
		TestAccuracy:  testAcc,
		FinalLoss:     loss,
		Energy:        led.TotalEnergy(),
		TuningShare:   led.Energy(core.CatGSTTuning).Joules() / led.TotalEnergy().Joules(),
	}, nil
}

// RunBranched trains the branched hardware miniature — residual add plus
// channel concat on the shared execution graph — in-situ on image data and
// evaluates it. Inputs must be C×H×W tensors with square spatial extent.
func RunBranched(data *dataset.Set, epochs int, lr float64, noisy bool) (*InSituResult, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	trainSet, testSet := data.Split(0.8)
	img := trainSet.Inputs[0]
	if img.Rank() != 3 || img.Dim(1) != img.Dim(2) {
		return nil, fmt.Errorf("train: branched model needs square C×H×W inputs, got shape %v", img.Shape())
	}
	g, err := models.HardwareMiniBranched(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: !noisy, NoiseSeed: 11},
		LearningRate: lr,
	}, img.Dim(0), img.Dim(1), data.Classes)
	if err != nil {
		return nil, err
	}
	var loss float64
	for e := 0; e < epochs; e++ {
		for i := range trainSet.Inputs {
			loss, err = g.TrainSample(trainSet.Inputs[i].Data(), trainSet.Labels[i])
			if err != nil {
				return nil, err
			}
		}
	}
	acc := func(s *dataset.Set) (float64, error) {
		if s.Len() == 0 {
			return 0, nil
		}
		correct := 0
		for i := range s.Inputs {
			cls, err := g.Predict(s.Inputs[i].Data())
			if err != nil {
				return 0, err
			}
			if cls == s.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(s.Len()), nil
	}
	trainAcc, err := acc(trainSet)
	if err != nil {
		return nil, err
	}
	testAcc, err := acc(testSet)
	if err != nil {
		return nil, err
	}
	led := g.Ledger()
	return &InSituResult{
		TrainAccuracy: trainAcc,
		TestAccuracy:  testAcc,
		FinalLoss:     loss,
		Energy:        led.TotalEnergy(),
		TuningShare:   led.Energy(core.CatGSTTuning).Joules() / led.TotalEnergy().Joules(),
	}, nil
}

// MismatchResult compares offline-trained-then-mapped accuracy against the
// full-precision reference — the Section I motivation: "the resulting
// mismatch between trained and implemented weights leads to sub-optimal
// accuracy at inference time".
type MismatchResult struct {
	FloatAccuracy float64 // digital fp reference
	EightBit      float64 // mapped onto 8-bit GST weights
	SixBit        float64 // mapped onto 6-bit thermal weights
}

// RunMismatch trains a small network digitally, then quantizes its weights
// at the two hardware resolutions and re-evaluates.
func RunMismatch(data *dataset.Set, hidden, epochs int, lr float64, seed int64) (*MismatchResult, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	trainSet, testSet := data.Split(0.8)
	dim := trainSet.Inputs[0].Len()
	build := func() *nn.Network {
		act := nn.NewGSTActivation("gst", 0)
		act.MaxOut = 1.0
		return nn.NewNetwork(
			nn.NewDense("fc1", dim, hidden, seed),
			act,
			nn.NewDense("fc2", hidden, data.Classes, seed+1),
		)
	}
	net := build()
	opt := nn.SGD{LearningRate: lr}
	for e := 0; e < epochs; e++ {
		for i := range trainSet.Inputs {
			nn.TrainStep(net, opt, trainSet.Inputs[i], trainSet.Labels[i])
		}
	}
	// Mapping digital weights onto hardware loses accuracy through two
	// mechanisms the paper names: finite resolution (quantization to the
	// tuner's grid) and manufacturing/programming variation the offline
	// model cannot see. The variation scale tracks what limits each
	// mechanism's resolution in the first place: thermal banks sit at 6
	// bits *because* crosstalk-induced variation is about one step there
	// (σ = 1 LSB), while optically programmed GST lands within half a
	// level (σ = 0.5 LSB, citing the 255-level demonstrations).
	evalQuantized := func(bits int, variationSeed int64) float64 {
		q := fixed.MustForBits(bits)
		sigma := 0.5 * q.Step()
		if bits <= device.ThermalBits {
			sigma = 1.0 * q.Step()
		}
		rng := newDeterministicNormal(variationSeed)
		saved := make([][]float64, 0)
		for _, p := range net.Params() {
			saved = append(saved, append([]float64(nil), p.Value.Data()...))
			// The optical bank realizes weights on [-1,1]; larger digital
			// weights saturate — exactly the mapping loss the paper
			// describes. Scale each tensor by its max-abs first (the
			// control unit's best-effort normalization), then quantize.
			scale := p.Value.MaxAbs()
			if scale == 0 {
				scale = 1
			}
			for i, v := range p.Value.Data() {
				programmed := q.Quantize(v/scale) + rng()*sigma
				p.Value.Data()[i] = programmed * scale
			}
		}
		acc := nn.Accuracy(net, testSet.Inputs, testSet.Labels)
		for pi, p := range net.Params() {
			copy(p.Value.Data(), saved[pi])
		}
		return acc
	}
	floatAcc := nn.Accuracy(net, testSet.Inputs, testSet.Labels)
	// Average the mapped accuracies over several device-variation draws so
	// the comparison is not hostage to one lucky perturbation.
	const draws = 5
	var acc8, acc6 float64
	for d := int64(0); d < draws; d++ {
		acc8 += evalQuantized(device.GSTBits, seed+100+d)
		acc6 += evalQuantized(device.ThermalBits, seed+200+d)
	}
	return &MismatchResult{
		FloatAccuracy: floatAcc,
		EightBit:      acc8 / draws,
		SixBit:        acc6 / draws,
	}, nil
}

// newDeterministicNormal returns a seeded standard-normal generator.
func newDeterministicNormal(seed int64) func() float64 {
	r := rand.New(rand.NewSource(seed))
	return r.NormFloat64
}

// DigitalBaselineAccuracy trains the same architecture purely digitally and
// returns test accuracy — the yardstick for in-situ runs.
func DigitalBaselineAccuracy(data *dataset.Set, hidden, epochs int, lr float64, seed int64) float64 {
	trainSet, testSet := data.Split(0.8)
	dim := trainSet.Inputs[0].Len()
	act := nn.NewGSTActivation("gst", 0)
	act.MaxOut = 1.0
	net := nn.NewNetwork(
		nn.NewDense("fc1", dim, hidden, seed),
		act,
		nn.NewDense("fc2", hidden, data.Classes, seed+1),
	)
	opt := nn.SGD{LearningRate: lr}
	for e := 0; e < epochs; e++ {
		for i := range trainSet.Inputs {
			nn.TrainStep(net, opt, trainSet.Inputs[i], trainSet.Labels[i])
		}
	}
	return nn.Accuracy(net, testSet.Inputs, testSet.Labels)
}

// QuantizationErrorAtBits returns the RMS weight error of quantizing a
// standard-normal weight population at the given resolution, normalized to
// the 8-bit error — the quantitative version of "8-bit resolution ...
// enough for NN training" vs. thermal's 6 bits.
func QuantizationErrorAtBits(bits int) float64 {
	q := fixed.MustForBits(bits)
	const n = 4096
	var mse float64
	for i := 0; i < n; i++ {
		v := -1 + 2*float64(i)/(n-1)
		e := q.Error(v)
		mse += e * e
	}
	return math.Sqrt(mse / n)
}

// QATResult compares deployment accuracy of three training flows at a
// target bit width: plain float training then post-training quantization,
// quantization-aware training, and the float reference.
type QATResult struct {
	FloatAccuracy float64
	PostTraining  float64 // float-trained, quantized at deploy time
	QAT           float64 // trained against the quantized grid
}

// RunQAT measures how much of the low-bit mapping loss quantization-aware
// training recovers. Both flows share the architecture, data order and
// learning rate; only the training rule differs.
func RunQAT(data *dataset.Set, hidden, epochs int, lr float64, bits int, seed int64) (*QATResult, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	trainSet, testSet := data.Split(0.8)
	dim := trainSet.Inputs[0].Len()
	build := func(s int64) *nn.Network {
		act := nn.NewGSTActivation("gst", 0)
		act.MaxOut = 1.0
		return nn.NewNetwork(
			nn.NewDense("fc1", dim, hidden, s),
			act,
			nn.NewDense("fc2", hidden, data.Classes, s+1),
		)
	}
	q, err := fixed.ForBits(bits)
	if err != nil {
		return nil, err
	}
	quantizeEval := func(net *nn.Network) float64 {
		saved := make([][]float64, 0, len(net.Params()))
		for _, p := range net.Params() {
			saved = append(saved, append([]float64(nil), p.Value.Data()...))
			scale := p.Value.MaxAbs()
			if scale == 0 {
				scale = 1
			}
			for i, v := range p.Value.Data() {
				p.Value.Data()[i] = q.Quantize(v/scale) * scale
			}
		}
		acc := nn.Accuracy(net, testSet.Inputs, testSet.Labels)
		for pi, p := range net.Params() {
			copy(p.Value.Data(), saved[pi])
		}
		return acc
	}

	// Flow 1: plain float training.
	floatNet := build(seed)
	opt := nn.SGD{LearningRate: lr}
	for e := 0; e < epochs; e++ {
		for i := range trainSet.Inputs {
			nn.TrainStep(floatNet, opt, trainSet.Inputs[i], trainSet.Labels[i])
		}
	}
	floatAcc := nn.Accuracy(floatNet, testSet.Inputs, testSet.Labels)
	ptq := quantizeEval(floatNet)

	// Flow 2: quantization-aware fine-tuning from the float model — the
	// standard deployment recipe. Copy the trained weights, then continue
	// training against the quantized grid at a reduced rate.
	qatNet := build(seed)
	for pi, p := range qatNet.Params() {
		copy(p.Value.Data(), floatNet.Params()[pi].Value.Data())
	}
	qat, err := nn.NewQATTrainer(qatNet, nn.SGD{LearningRate: lr / 4}, bits)
	if err != nil {
		return nil, err
	}
	fineTune := epochs/2 + 1
	for e := 0; e < fineTune; e++ {
		for i := range trainSet.Inputs {
			qat.TrainStep(trainSet.Inputs[i], trainSet.Labels[i])
		}
	}
	qatAcc := qat.EvalQuantized(testSet.Inputs, testSet.Labels)
	return &QATResult{FloatAccuracy: floatAcc, PostTraining: ptq, QAT: qatAcc}, nil
}
