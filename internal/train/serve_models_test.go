package train

import (
	"testing"
)

// TestNewServeModelKinds pins the serving-model constructors: every kind
// trains, the topologies genuinely differ (the multi-model serve demo is
// not N copies of one net), and the same (kind, seed) pair reproduces the
// same trained behaviour.
func TestNewServeModelKinds(t *testing.T) {
	if len(ServeModelKinds()) < 3 {
		t.Fatalf("kinds %v, want at least blobs/spirals/digits", ServeModelKinds())
	}
	widths := map[int]bool{}
	for _, kind := range []ServeModelKind{ServeBlobs, ServeSpirals, ServeDigits} {
		net, err := NewServeModel(kind, 5)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ServeModelDims(kind) == "" {
			t.Fatalf("%s: no dims description", kind)
		}
		w := net.InputSize()
		if widths[w] {
			t.Fatalf("%s: input width %d collides with another kind — models are not distinct", kind, w)
		}
		widths[w] = true

		// Determinism: a second build from the same seed classifies a probe
		// identically (replica fan-out and journal replay depend on this).
		twin, err := NewServeModel(kind, 5)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, w)
		for i := range x {
			x[i] = float64(i%3)/3 - 0.5
		}
		a, err := net.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := twin.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s: same seed trained to different classifiers (%d vs %d)", kind, a, b)
		}
	}
	if _, err := NewServeModel("nope", 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestServeModelLearnsBlobs pins that the default serving model actually
// separates its training distribution — the demo serves a real classifier.
func TestServeModelLearnsBlobs(t *testing.T) {
	net, err := NewServeModel(ServeBlobs, 42)
	if err != nil {
		t.Fatal(err)
	}
	data := blobsEval(42)
	correct := 0
	for i := range data.Inputs {
		cls, err := net.Predict(data.Inputs[i].Data())
		if err != nil {
			t.Fatal(err)
		}
		if cls == data.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(data.Len()); acc < 0.8 {
		t.Fatalf("blobs serve model accuracy %.2f, want ≥ 0.80", acc)
	}
}
