package train

// Serving-model constructors: each trains a small MLP in situ on a
// synthetic workload and hands the trained network to the caller. The
// serve subcommand uses these so a multi-model deployment fronts
// genuinely different graphs — different input widths, class counts, and
// trained weights — instead of N copies of one demo net. Noise is
// disabled so served classes are deterministic: journal replays, replica
// fan-out (Network.Replicate) and repeated curls all agree bit-exactly.

import (
	"fmt"
	"sort"

	"trident/internal/core"
	"trident/internal/dataset"
)

// ServeModelKind names a trainable serving model.
type ServeModelKind string

const (
	// ServeBlobs is the 6→16→3 Gaussian-blobs classifier — the historical
	// `trident serve` demo model.
	ServeBlobs ServeModelKind = "blobs"
	// ServeSpirals is a 2→24→2 classifier on interleaved spirals, a
	// harder nonlinear boundary at tiny input width.
	ServeSpirals ServeModelKind = "spirals"
	// ServeDigits is a 35→24→10 classifier on synthetic 7×5 digit glyphs.
	ServeDigits ServeModelKind = "digits"
)

// ServeModelKinds lists the available kinds in stable order.
func ServeModelKinds() []string {
	kinds := []string{string(ServeBlobs), string(ServeSpirals), string(ServeDigits)}
	sort.Strings(kinds)
	return kinds
}

// serveRecipe is one model's training setup.
type serveRecipe struct {
	data    func(seed int64) *dataset.Set
	hidden  int
	epochs  int
	lr      float64
	dimDesc string
}

func serveRecipes() map[ServeModelKind]serveRecipe {
	return map[ServeModelKind]serveRecipe{
		ServeBlobs: {
			data:   func(seed int64) *dataset.Set { return dataset.Blobs(600, 3, 6, 0.1, seed) },
			hidden: 16, epochs: 6, lr: 0.08, dimDesc: "6→16→3",
		},
		ServeSpirals: {
			data:   func(seed int64) *dataset.Set { return dataset.Spirals(400, 0.05, seed) },
			hidden: 24, epochs: 12, lr: 0.06, dimDesc: "2→24→2",
		},
		ServeDigits: {
			data:   func(seed int64) *dataset.Set { return dataset.Digits(400, 7, 5, 0.05, seed) },
			hidden: 24, epochs: 8, lr: 0.06, dimDesc: "35→24→10",
		},
	}
}

// NewServeModel trains the named model kind in situ and returns the
// trained network, ready for serving or replica fan-out via
// Network.Replicate. The same (kind, seed) pair always yields the same
// trained weights.
func NewServeModel(kind ServeModelKind, seed int64) (*core.Network, error) {
	rec, ok := serveRecipes()[kind]
	if !ok {
		return nil, fmt.Errorf("train: unknown serve model %q (have %v)", kind, ServeModelKinds())
	}
	data := rec.data(seed)
	dim := data.Inputs[0].Len()
	net, err := core.NewNetwork(
		core.NetworkConfig{
			PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
			LearningRate: rec.lr,
		},
		core.LayerSpec{In: dim, Out: rec.hidden, Activate: true},
		core.LayerSpec{In: rec.hidden, Out: data.Classes},
	)
	if err != nil {
		return nil, err
	}
	for e := 0; e < rec.epochs; e++ {
		for i := range data.Inputs {
			if _, err := net.TrainSample(data.Inputs[i].Data(), data.Labels[i]); err != nil {
				return nil, fmt.Errorf("train: serve model %q epoch %d: %w", kind, e, err)
			}
		}
	}
	return net, nil
}

// ServeModelDims describes the named kind's topology for banners and
// usage text ("6→16→3"); empty for unknown kinds.
func ServeModelDims(kind ServeModelKind) string {
	return serveRecipes()[kind].dimDesc
}

// blobsEval regenerates the blobs training distribution for accuracy
// checks against a served model.
func blobsEval(seed int64) *dataset.Set {
	return serveRecipes()[ServeBlobs].data(seed)
}
