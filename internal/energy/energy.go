// Package energy assembles the power and area breakdowns of the Trident
// accelerator: Table III (per-PE device power) and Fig. 5 (chip area by
// component).
package energy

import (
	"fmt"

	"trident/internal/device"
	"trident/internal/units"
)

// PowerRow is one row of the Table III breakdown.
type PowerRow struct {
	Component string
	Power     units.Power
	Share     float64 // fraction of the PE total
}

// PowerBreakdown returns Table III: the per-PE device power rows with their
// shares, in the paper's order.
func PowerBreakdown() []PowerRow {
	rows := []PowerRow{
		{Component: "LDSU", Power: device.PowerLDSU},
		{Component: "E/O Laser", Power: device.PowerEOLaser},
		{Component: "GST MRR Tuning", Power: device.PowerGSTTuning},
		{Component: "GST MRR Read", Power: device.PowerGSTRead},
		{Component: "GST Activation Function Reset", Power: device.PowerActivationReset},
		{Component: "BPD and TIA", Power: device.PowerBPDTIA},
		{Component: "Cache", Power: device.PowerCache},
	}
	total := TotalPEPower()
	for i := range rows {
		rows[i].Share = rows[i].Power.Watts() / total.Watts()
	}
	return rows
}

// TotalPEPower returns the Table III total (≈0.67 W).
func TotalPEPower() units.Power { return device.PEPowerTotal }

// AreaRow is one slice of the Fig. 5 area breakdown.
type AreaRow struct {
	Component string
	// PerDevice is the footprint of one instance.
	PerDevice units.Area
	// Count is instances per PE.
	Count int
	// PerPE is PerDevice × Count.
	PerPE units.Area
	// Share is the fraction of the PE area.
	Share float64
}

// Per-device footprints. The TIA dominates — "Most of that area is
// consumed by the TIAs" (Section IV) — because a GHz-class linear
// transimpedance stage with its biasing and output buffering occupies
// ~0.5 mm² in the 32 nm-class analog node the paper's power figures imply.
// The remaining entries use the geometries given in the paper (60 µm
// activation rings, 0.092×0.085 mm cache) or typical silicon-photonic PDK
// cells.
var (
	tiaArea        = units.Area(0.50e-6)  // 0.50 mm² per row TIA
	eoLaserArea    = units.Area(0.20e-6)  // 0.20 mm² per row modulator/driver
	bpdArea        = units.Area(0.10e-6)  // 0.10 mm² per balanced PD pair
	digitalArea    = units.Area(0.592e-6) // control logic incl. the 16 kB cache
	activationArea = areaOfRing(device.ActivationRingRadius)
	mrrArea        = units.Area(20e-6 * 20e-6) // 5 µm ring + coupling gap + GST pad
	ldsuArea       = units.Area(0.0004e-6)     // comparator + DFF
)

// areaOfRing returns the bounding-box footprint of a ring resonator.
func areaOfRing(r units.Length) units.Area {
	d := 2 * r.Meters()
	return units.Area(d * d)
}

// AreaBreakdown returns the Fig. 5 per-PE area rows, largest first.
func AreaBreakdown() []AreaRow {
	rows := []AreaRow{
		{Component: "TIA", PerDevice: tiaArea, Count: device.WeightBankRows},
		{Component: "E/O Laser", PerDevice: eoLaserArea, Count: device.WeightBankRows},
		{Component: "BPD", PerDevice: bpdArea, Count: device.WeightBankRows},
		{Component: "Cache and Control", PerDevice: digitalArea, Count: 1},
		{Component: "GST Activation Cell", PerDevice: activationArea, Count: device.WeightBankRows},
		{Component: "MRR Weight Bank", PerDevice: mrrArea, Count: device.MRRsPerPE},
		{Component: "LDSU", PerDevice: ldsuArea, Count: device.WeightBankRows},
	}
	total := 0.0
	for i := range rows {
		rows[i].PerPE = units.Area(rows[i].PerDevice.SquareMillimeters() * float64(rows[i].Count) * 1e-6)
		total += rows[i].PerPE.SquareMillimeters()
	}
	for i := range rows {
		rows[i].Share = rows[i].PerPE.SquareMillimeters() / total
	}
	return rows
}

// PEArea returns the area of one PE.
func PEArea() units.Area {
	var total float64
	for _, r := range AreaBreakdown() {
		total += r.PerPE.SquareMillimeters()
	}
	return units.Area(total * 1e-6)
}

// ChipArea returns the area of the full 44-PE accelerator (the paper's
// 604.6 mm²).
func ChipArea() units.Area {
	return units.Area(PEArea().SquareMillimeters() * float64(device.TridentPEs) * 1e-6)
}

// String renders a power row.
func (r PowerRow) String() string {
	return fmt.Sprintf("%-30s %10s %6.2f%%", r.Component, r.Power, r.Share*100)
}

// String renders an area row.
func (r AreaRow) String() string {
	return fmt.Sprintf("%-20s %3d × %-12s %10s %6.2f%%",
		r.Component, r.Count, r.PerDevice, r.PerPE, r.Share*100)
}

// OperatingState is one power state of the deployed accelerator.
type OperatingState string

// Chip operating states.
const (
	// StateProgramming: all weight banks being written (worst case; what
	// the 30 W budget is provisioned against).
	StateProgramming OperatingState = "programming"
	// StateStreaming: weights resident, pipelines clocked.
	StateStreaming OperatingState = "streaming"
	// StateIdle: weights resident (non-volatile — held for free), clocks
	// gated; only the cache/control standby remains.
	StateIdle OperatingState = "idle"
)

// ChipPower returns the whole-accelerator power in a state, including the
// shared comb laser (16 lines/PE at 1 mW optical, 20% wall plug) for the
// active states.
func ChipPower(state OperatingState) units.Power {
	pes := float64(device.TridentPEs)
	comb := units.Power(pes * float64(device.WeightBankCols) * 1e-3 / device.LaserWallPlugEfficiency)
	switch state {
	case StateProgramming:
		return units.Power(pes*float64(device.PEPowerTotal)) + comb
	case StateStreaming:
		return units.Power(pes*float64(device.PostTuningPEPower())) + comb
	case StateIdle:
		// Non-volatile weights persist unpowered; only cache standby
		// (~10% of active cache power) remains.
		return units.Power(pes * float64(device.PowerCache) * 0.1)
	default:
		return 0
	}
}

// ChipSummary is the deployment-facing roll-up.
type ChipSummary struct {
	PEs         int
	Area        units.Area
	Programming units.Power
	Streaming   units.Power
	Idle        units.Power
}

// Summary returns the chip roll-up at the paper's operating point.
func Summary() ChipSummary {
	return ChipSummary{
		PEs:         device.TridentPEs,
		Area:        ChipArea(),
		Programming: ChipPower(StateProgramming),
		Streaming:   ChipPower(StateStreaming),
		Idle:        ChipPower(StateIdle),
	}
}
