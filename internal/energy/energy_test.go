package energy

import (
	"math"
	"testing"

	"trident/internal/device"
)

// TestTableIIIRows pins the breakdown to the published table.
func TestTableIIIRows(t *testing.T) {
	rows := PowerBreakdown()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	wantShares := map[string]float64{
		"LDSU":                          0.0001,
		"E/O Laser":                     0.0000,
		"GST MRR Tuning":                0.8334,
		"GST MRR Read":                  0.0252,
		"GST Activation Function Reset": 0.0789,
		"BPD and TIA":                   0.0178,
		"Cache":                         0.0444,
	}
	sum := 0.0
	for _, r := range rows {
		want, ok := wantShares[r.Component]
		if !ok {
			t.Errorf("unexpected component %q", r.Component)
			continue
		}
		if math.Abs(r.Share-want) > 0.002 {
			t.Errorf("%s share = %.4f, want %.4f (Table III)", r.Component, r.Share, want)
		}
		sum += r.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
	if math.Abs(TotalPEPower().Watts()-0.67) > 0.01 {
		t.Errorf("total = %v, want ≈0.67W", TotalPEPower())
	}
}

// TestFigure5TIADominates: "Most of that area is consumed by the TIAs".
func TestFigure5TIADominates(t *testing.T) {
	rows := AreaBreakdown()
	if rows[0].Component != "TIA" {
		t.Fatalf("first row = %s, want TIA (largest)", rows[0].Component)
	}
	if rows[0].Share < 0.5 {
		t.Errorf("TIA share = %.2f, want dominant (>0.5)", rows[0].Share)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PerPE > rows[0].PerPE {
			t.Errorf("%s area exceeds TIA", rows[i].Component)
		}
	}
	sum := 0.0
	for _, r := range rows {
		if r.PerPE <= 0 || r.Share <= 0 {
			t.Errorf("%s has no area", r.Component)
		}
		sum += r.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("area shares sum to %v", sum)
	}
}

// TestChipAreaMatchesPaper: 44 PEs occupy ≈604.6 mm², under a square inch.
func TestChipAreaMatchesPaper(t *testing.T) {
	got := ChipArea().SquareMillimeters()
	if math.Abs(got-604.6) > 6 {
		t.Errorf("chip area = %.1f mm², want ≈604.6", got)
	}
	const squareInch = 645.16 // mm²
	if got >= squareInch {
		t.Errorf("chip area %.1f mm² not under one square inch", got)
	}
}

// TestPEAreaConsistent: chip = 44 × PE.
func TestPEAreaConsistent(t *testing.T) {
	pe := PEArea().SquareMillimeters()
	chip := ChipArea().SquareMillimeters()
	if math.Abs(chip-pe*float64(device.TridentPEs)) > 1e-9 {
		t.Errorf("chip %v ≠ 44 × PE %v", chip, pe)
	}
}

// TestActivationRingFootprint: the 60 µm activation ring's bounding box is
// 120×120 µm.
func TestActivationRingFootprint(t *testing.T) {
	got := areaOfRing(device.ActivationRingRadius).SquareMillimeters()
	want := 0.120 * 0.120
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("activation ring area = %v mm², want %v", got, want)
	}
}

// TestMRRBankSmallerThanAnalog: the photonic weight bank is tiny next to
// the analog electronics — the paper's area argument for MRRs over MZMs.
func TestMRRBankSmallerThanAnalog(t *testing.T) {
	rows := AreaBreakdown()
	var bank, tia float64
	for _, r := range rows {
		switch r.Component {
		case "MRR Weight Bank":
			bank = r.PerPE.SquareMillimeters()
		case "TIA":
			tia = r.PerPE.SquareMillimeters()
		}
	}
	if bank*10 > tia {
		t.Errorf("MRR bank %.3f mm² not ≪ TIA %.3f mm²", bank, tia)
	}
}

// TestChipPowerStates: programming > streaming ≫ idle, with programming at
// the 30 W-class worst case and idle in the hundreds of milliwatts — the
// non-volatility story at chip scale.
func TestChipPowerStates(t *testing.T) {
	prog := ChipPower(StateProgramming)
	stream := ChipPower(StateStreaming)
	idle := ChipPower(StateIdle)
	if !(prog > stream && stream > idle) {
		t.Fatalf("state ordering broken: prog=%v stream=%v idle=%v", prog, stream, idle)
	}
	// Programming ≈ 44×0.676 + comb 3.52 ≈ 33.3 W (budget + shared comb).
	if prog.Watts() < 29 || prog.Watts() > 36 {
		t.Errorf("programming power = %v, want ≈33W", prog)
	}
	// Streaming ≈ 44×0.113 + 3.52 ≈ 8.5 W.
	if stream.Watts() < 6 || stream.Watts() > 11 {
		t.Errorf("streaming power = %v, want ≈8.5W", stream)
	}
	// Idle: non-volatile weights cost nothing; only standby cache.
	if idle.Watts() > 0.5 {
		t.Errorf("idle power = %v, want < 0.5W", idle)
	}
	if ChipPower("bogus") != 0 {
		t.Error("unknown state must return 0")
	}
}

func TestChipSummary(t *testing.T) {
	s := Summary()
	if s.PEs != device.TridentPEs {
		t.Errorf("PEs = %d", s.PEs)
	}
	if math.Abs(s.Area.SquareMillimeters()-604.2) > 2 {
		t.Errorf("area = %v", s.Area)
	}
	if s.Programming <= s.Streaming || s.Streaming <= s.Idle {
		t.Error("summary state ordering broken")
	}
}
