package analog

import (
	"math"
	"testing"
	"testing/quick"

	"trident/internal/device"
	"trident/internal/units"
)

func TestBPDIdealDifference(t *testing.T) {
	b := NewBPD(1)
	got := b.DetectIdeal(3*units.Milliwatt, 1*units.Milliwatt)
	want := device.BPDResponsivity * 2e-3
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("ideal detection = %v, want %v", got, want)
	}
	// Balanced inputs cancel.
	if got := b.DetectIdeal(1*units.Milliwatt, 1*units.Milliwatt); got != 0 {
		t.Errorf("balanced detection = %v, want 0", got)
	}
}

func TestBPDNoiseStatistics(t *testing.T) {
	b := NewBPD(42)
	const n = 20000
	plus, minus := 1*units.Milliwatt, 0.5*units.Milliwatt
	mean := 0.0
	var m2 float64
	for i := 0; i < n; i++ {
		v := b.Detect(plus, minus)
		mean += v
	}
	mean /= n
	ideal := b.DetectIdeal(plus, minus)
	sigma := b.NoiseSigma(plus + minus)
	if math.Abs(mean-ideal) > 5*sigma/math.Sqrt(n) {
		t.Errorf("noisy mean = %v, ideal = %v (bias beyond 5σ/√n)", mean, ideal)
	}
	for i := 0; i < n; i++ {
		d := b.Detect(plus, minus) - ideal
		m2 += d * d
	}
	got := math.Sqrt(m2 / n)
	if got < sigma*0.9 || got > sigma*1.1 {
		t.Errorf("measured noise σ = %v, predicted %v", got, sigma)
	}
}

func TestBPDNoiseSigmaDegenerate(t *testing.T) {
	b := NewBPD(1)
	// Zero power still has thermal + dark noise.
	if b.NoiseSigma(0) <= 0 {
		t.Error("noise at zero power must still be positive (thermal floor)")
	}
}

// TestSNRSupportsEightBits checks the design premise that the analog
// accumulation supports ≥8 effective bits at ~mW signal levels, which is
// what lets GST weighting deliver 8-bit MACs end to end.
func TestSNRSupportsEightBits(t *testing.T) {
	b := NewBPD(1)
	bits := b.SNRBits(1 * units.Milliwatt)
	if bits < 8 {
		t.Errorf("SNR bits at 1mW = %.1f, want ≥ 8", bits)
	}
	// At nW levels the resolution collapses — noise matters.
	if low := b.SNRBits(1 * units.Nanowatt); low >= bits {
		t.Errorf("SNR must degrade at low power: %.1f ≥ %.1f", low, bits)
	}
	if got := b.SNRBits(0); got != 0 {
		t.Errorf("SNR bits at 0 power = %v, want 0", got)
	}
}

func TestTIA(t *testing.T) {
	if _, err := NewTIA(0); err == nil {
		t.Error("zero gain: want error")
	}
	tia, err := NewTIA(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := tia.Amplify(1e-3); math.Abs(got-1.0) > 1e-15 {
		t.Errorf("1mA × 1kΩ = %v, want 1V", got)
	}
	// Programmable scale: the f'(h) hook.
	if err := tia.SetScale(0.34); err != nil {
		t.Fatal(err)
	}
	if got := tia.Amplify(1e-3); math.Abs(got-0.34) > 1e-15 {
		t.Errorf("scaled gain = %v, want 0.34", got)
	}
	if tia.Scale() != 0.34 {
		t.Errorf("Scale() = %v, want 0.34", tia.Scale())
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := tia.SetScale(bad); err == nil {
			t.Errorf("SetScale(%v): want error", bad)
		}
	}
}

func TestADCConvert(t *testing.T) {
	a := NewADC()
	if a.Bits != 8 {
		t.Fatalf("bits = %d, want 8", a.Bits)
	}
	// Conversion is a quantization: error bounded by one LSB.
	lsb := 2.0 / 255
	for _, v := range []float64{-1, -0.33, 0, 0.5, 0.99, 1} {
		got := a.Convert(v)
		if math.Abs(got-v) > lsb {
			t.Errorf("Convert(%v) = %v, error beyond 1 LSB", v, got)
		}
	}
	if got := a.Convert(5); got != 1 {
		t.Errorf("Convert(5) = %v, want clamp to 1", got)
	}
	if got := a.Convert(-5); got != -1 {
		t.Errorf("Convert(-5) = %v, want clamp to -1", got)
	}
	if got := a.Convert(math.NaN()); got != 0 {
		t.Errorf("Convert(NaN) = %v, want 0", got)
	}
}

// Property: ADC conversion is idempotent.
func TestQuickADCIdempotent(t *testing.T) {
	a := NewADC()
	f := func(v float64) bool {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		once := a.Convert(v)
		return a.Convert(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestADCDominatesRowPower verifies the paper's motivating claim: one ADC
// draws more than a whole row's BPD+TIA front end, so removing the ADC is a
// first-order power win.
func TestADCDominatesRowPower(t *testing.T) {
	adc := NewADC()
	rowBudget := units.Power(float64(device.PowerBPDTIA) / float64(device.WeightBankRows))
	if adc.Power <= rowBudget {
		t.Errorf("ADC power %v should exceed per-row BPD+TIA %v", adc.Power, rowBudget)
	}
}

func TestConverterEnergies(t *testing.T) {
	adc, dac := NewADC(), NewDAC()
	if adc.EnergyPerConversion() <= 0 || dac.EnergyPerConversion() <= 0 {
		t.Error("conversion energies must be positive")
	}
	// At 14.8mW and 1.37GHz, one conversion ≈ 10.8 pJ.
	got := adc.EnergyPerConversion().Picojoules()
	if got < 5 || got > 20 {
		t.Errorf("ADC energy/conversion = %vpJ, want ≈10.8", got)
	}
}

func TestRowFrontEnd(t *testing.T) {
	fe, err := NewRowFrontEnd(5)
	if err != nil {
		t.Fatal(err)
	}
	// Per-row power share: 12.1mW / 16 rows.
	want := 12.1 / 16
	if got := fe.Power().Milliwatts(); math.Abs(got-want) > 1e-9 {
		t.Errorf("row front-end power = %vmW, want %v", got, want)
	}
	out := fe.Process(2*units.Milliwatt, 1*units.Milliwatt)
	ideal := fe.TIA.Amplify(fe.BPD.DetectIdeal(2*units.Milliwatt, 1*units.Milliwatt))
	if math.Abs(out-ideal) > math.Abs(ideal)*0.05+1e-3 {
		t.Errorf("processed output %v too far from ideal %v", out, ideal)
	}
}
