// Package analog models the opto-electronic front end of a photonic PE: the
// balanced photodetector (BPD) that subtracts drop- and through-port power
// to recover signed dot products, the transimpedance amplifier (TIA) whose
// programmable gain implements the Hadamard product of the backward pass,
// and the ADC/DAC converters that baseline accelerators need between layers
// but Trident eliminates.
package analog

import (
	"fmt"
	"math"
	"math/rand"

	"trident/internal/device"
	"trident/internal/units"
)

// Physical constants.
const (
	electronCharge = 1.602176634e-19 // C
	boltzmann      = 1.380649e-23    // J/K
	roomTemp       = 300.0           // K
)

// BPD is a balanced photodetector pair: two photodiodes wired back-to-back
// so the output current is R·(P_plus − P_minus). Positive and negative
// partial products land on opposite diodes, which is how a broadcast-and-
// weight bank produces signed dot products without negative light.
type BPD struct {
	Responsivity float64         // A/W
	Bandwidth    units.Frequency // detection bandwidth
	DarkCurrent  float64         // A
	LoadOhms     float64         // thermal-noise load resistance

	rng *rand.Rand
}

// NewBPD returns a BPD with the paper-consistent defaults: 1 A/W
// responsivity, bandwidth matching the 1.37 GHz symbol clock.
func NewBPD(seed int64) *BPD {
	return &BPD{
		Responsivity: device.BPDResponsivity,
		Bandwidth:    units.Frequency(device.ClockRate),
		DarkCurrent:  10e-9,
		LoadOhms:     50,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Detect converts a differential optical power (plus − minus) into a
// photocurrent including shot and thermal noise. Noise makes the analog MAC
// inexact; its magnitude relative to the signal bounds the usable bit
// resolution of the accumulation.
func (b *BPD) Detect(plus, minus units.Power) float64 {
	signal := b.Responsivity * (plus.Watts() - minus.Watts())
	total := b.Responsivity*(plus.Watts()+minus.Watts()) + 2*b.DarkCurrent
	if total < 0 {
		total = 0
	}
	bw := b.Bandwidth.Hertz()
	shotVar := 2 * electronCharge * total * bw
	thermalVar := 4 * boltzmann * roomTemp * bw / b.LoadOhms
	sigma := math.Sqrt(shotVar + thermalVar)
	return signal + b.rng.NormFloat64()*sigma
}

// DetectIdeal converts without noise, for error-budget comparisons.
func (b *BPD) DetectIdeal(plus, minus units.Power) float64 {
	return b.Responsivity * (plus.Watts() - minus.Watts())
}

// NoiseSigma returns the RMS current noise for a given total incident power.
func (b *BPD) NoiseSigma(total units.Power) float64 {
	bw := b.Bandwidth.Hertz()
	cur := b.Responsivity*total.Watts() + 2*b.DarkCurrent
	if cur < 0 {
		cur = 0
	}
	return math.Sqrt(2*electronCharge*cur*bw + 4*boltzmann*roomTemp*bw/b.LoadOhms)
}

// SNRBits returns the effective number of bits the analog accumulation
// supports for a full-scale optical signal: log2(fullScaleCurrent / (2·σ)).
func (b *BPD) SNRBits(fullScale units.Power) float64 {
	sigma := b.NoiseSigma(fullScale)
	if sigma <= 0 {
		return 64
	}
	i := b.Responsivity * fullScale.Watts()
	if i <= 0 {
		return 0
	}
	return math.Log2(i / (2 * sigma))
}

// TIA is a transimpedance amplifier with a programmable gain. During
// inference the gain is fixed; during the gradient-vector pass the control
// unit programs each row's gain to the stored derivative f'(h) so that the
// electrical output is (Wᵀδ)⊙f'(h) — equation (3) executed in the analog
// domain.
type TIA struct {
	GainOhms float64 // transimpedance, V/A
	scale    float64 // programmable multiplicative gain factor
}

// NewTIA returns a TIA with the given transimpedance and unit gain factor.
func NewTIA(gainOhms float64) (*TIA, error) {
	if gainOhms <= 0 {
		return nil, fmt.Errorf("analog: TIA gain %v must be positive", gainOhms)
	}
	return &TIA{GainOhms: gainOhms, scale: 1}, nil
}

// SetScale programs the multiplicative gain factor (the f'(h) hook).
// Negative scales are rejected: the derivative of the GST activation is
// non-negative and the hardware gain stage is unipolar.
func (t *TIA) SetScale(s float64) error {
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Errorf("analog: TIA scale %v must be a finite non-negative value", s)
	}
	t.scale = s
	return nil
}

// Scale returns the programmed gain factor.
func (t *TIA) Scale() float64 { return t.scale }

// Amplify converts a photocurrent to a voltage: V = I·gain·scale.
func (t *TIA) Amplify(current float64) float64 {
	return current * t.GainOhms * t.scale
}

// ADC models the analog-to-digital converter baseline photonic accelerators
// place after every PE row. Its figures follow the 8-bit GHz-class SAR
// designs in the survey literature the paper's references rely on; the
// paper's point is that this device dominates power and Trident removes it.
type ADC struct {
	Bits       int
	SampleRate units.Frequency
	// Power is the conversion power draw. ≈15 mW for 8-bit at the symbol
	// clock — on par with an entire Trident PE row's BPD+TIA budget.
	Power units.Power
}

// NewADC returns an 8-bit converter at the architecture clock.
func NewADC() *ADC {
	return &ADC{Bits: 8, SampleRate: units.Frequency(device.ClockRate), Power: 14.8 * units.Milliwatt}
}

// Convert quantizes a normalized analog value in [-1, 1] to its code grid.
func (a *ADC) Convert(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		v = 1
	}
	if v < -1 {
		v = -1
	}
	// 2^bits − 1 codes span [-1, 1] symmetrically, so zero is a code.
	steps := float64(int(1)<<a.Bits - 2)
	return math.Round((v+1)/2*steps)/steps*2 - 1
}

// EnergyPerConversion returns the energy of one sample.
func (a *ADC) EnergyPerConversion() units.Energy {
	return a.Power.OverTime(a.SampleRate.Period())
}

// DAC models the digital-to-analog converter that drives input modulators.
type DAC struct {
	Bits       int
	SampleRate units.Frequency
	Power      units.Power
}

// NewDAC returns an 8-bit DAC at the architecture clock.
func NewDAC() *DAC {
	return &DAC{Bits: 8, SampleRate: units.Frequency(device.ClockRate), Power: 6.0 * units.Milliwatt}
}

// EnergyPerConversion returns the energy of one sample.
func (d *DAC) EnergyPerConversion() units.Energy {
	return d.Power.OverTime(d.SampleRate.Period())
}

// RowFrontEnd bundles the per-row electronics of one Trident PE row: BPD
// followed by TIA. Its power is the Table III BPD+TIA row divided across
// the PE's rows.
type RowFrontEnd struct {
	BPD *BPD
	TIA *TIA
}

// NewRowFrontEnd returns a front end seeded for reproducible noise.
func NewRowFrontEnd(seed int64) (*RowFrontEnd, error) {
	tia, err := NewTIA(1000)
	if err != nil {
		return nil, err
	}
	return &RowFrontEnd{BPD: NewBPD(seed), TIA: tia}, nil
}

// Power returns the row's share of the Table III BPD+TIA budget.
func (RowFrontEnd) Power() units.Power {
	return units.Power(float64(device.PowerBPDTIA) / float64(device.WeightBankRows))
}

// Process runs detection and amplification on a differential optical input.
func (r *RowFrontEnd) Process(plus, minus units.Power) float64 {
	return r.TIA.Amplify(r.BPD.Detect(plus, minus))
}
