package dataset

import (
	"math"
	"testing"

	"trident/internal/nn"
)

func TestBlobsBasic(t *testing.T) {
	s := Blobs(100, 4, 8, 0.05, 1)
	if s.Len() != 100 || s.Classes != 4 {
		t.Fatalf("len=%d classes=%d", s.Len(), s.Classes)
	}
	counts := map[int]int{}
	for _, l := range s.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for c, n := range counts {
		if n != 25 {
			t.Errorf("class %d count = %d, want 25 (balanced)", c, n)
		}
	}
	if s.Inputs[0].Len() != 8 {
		t.Errorf("dim = %d, want 8", s.Inputs[0].Len())
	}
}

func TestBlobsDeterministic(t *testing.T) {
	a := Blobs(50, 3, 4, 0.1, 7)
	b := Blobs(50, 3, 4, 0.1, 7)
	for i := range a.Inputs {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Inputs[i].Data() {
			if a.Inputs[i].Data()[j] != b.Inputs[i].Data()[j] {
				t.Fatal("inputs differ across identical seeds")
			}
		}
	}
	c := Blobs(50, 3, 4, 0.1, 8)
	same := true
	for j := range a.Inputs[0].Data() {
		if a.Inputs[0].Data()[j] != c.Inputs[0].Data()[j] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different data")
	}
}

func TestBlobsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Blobs(0, 2, 2, 0.1, 1) },
		func() { Blobs(10, 1, 2, 0.1, 1) },
		func() { Blobs(10, 2, 0, 0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry should panic")
				}
			}()
			fn()
		}()
	}
}

func TestSplit(t *testing.T) {
	s := Blobs(100, 2, 2, 0.1, 2)
	train, test := s.Split(0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split sizes %d/%d, want 80/20", train.Len(), test.Len())
	}
	// Degenerate fractions clamp.
	tr, te := s.Split(-1)
	if tr.Len() != 0 || te.Len() != 100 {
		t.Error("negative fraction should clamp to 0")
	}
	tr, te = s.Split(2)
	if tr.Len() != 100 || te.Len() != 0 {
		t.Error("fraction >1 should clamp to 1")
	}
}

func TestSpirals(t *testing.T) {
	s := Spirals(200, 0.01, 3)
	if s.Len() != 200 || s.Classes != 2 {
		t.Fatalf("len=%d classes=%d", s.Len(), s.Classes)
	}
	// The two spirals must be radially interleaved: class is not a
	// function of radius, so a linear classifier on radius fails. Verify
	// both classes appear at similar radii ranges.
	var rmax [2]float64
	var rmin = [2]float64{math.Inf(1), math.Inf(1)}
	for i, x := range s.Inputs {
		r := math.Hypot(x.Data()[0], x.Data()[1])
		c := s.Labels[i]
		if r > rmax[c] {
			rmax[c] = r
		}
		if r < rmin[c] {
			rmin[c] = r
		}
	}
	for c := 0; c < 2; c++ {
		if rmax[c]-rmin[c] < 0.3 {
			t.Errorf("class %d radius span too small: [%v,%v]", c, rmin[c], rmax[c])
		}
	}
}

func TestMiniImages(t *testing.T) {
	s := MiniImages(40, 4, 1, 8, 8, 0.05, 4)
	if s.Len() != 40 || s.Classes != 4 {
		t.Fatalf("len=%d classes=%d", s.Len(), s.Classes)
	}
	sh := s.Inputs[0].Shape()
	if sh[0] != 1 || sh[1] != 8 || sh[2] != 8 {
		t.Errorf("image shape %v, want [1 8 8]", sh)
	}
	// Images must carry non-trivial signal.
	if s.Inputs[0].MaxAbs() < 0.1 {
		t.Error("image appears empty")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	// After shuffling, each input must stay with its original label:
	// regenerate without shuffle and compare as multisets keyed on the
	// first coordinate.
	s := Blobs(60, 3, 2, 0.0, 5) // zero spread: inputs are exactly the class centers
	seen := map[float64]int{}
	for i, x := range s.Inputs {
		key := x.Data()[0]
		if prev, ok := seen[key]; ok && prev != s.Labels[i] {
			t.Fatalf("same center maps to two labels: %d vs %d", prev, s.Labels[i])
		}
		seen[key] = s.Labels[i]
	}
	if len(seen) != 3 {
		t.Errorf("expected exactly 3 distinct centers, got %d", len(seen))
	}
}

func TestDigits(t *testing.T) {
	s := Digits(50, 8, 6, 0.02, 7)
	if s.Len() != 50 || s.Classes != 10 {
		t.Fatalf("len=%d classes=%d", s.Len(), s.Classes)
	}
	sh := s.Inputs[0].Shape()
	if sh[0] != 1 || sh[1] != 8 || sh[2] != 6 {
		t.Errorf("shape %v, want [1 8 6]", sh)
	}
	// A "1" must be dimmer (fewer segments) than an "8".
	var one, eight float64
	for i, l := range s.Labels {
		sum := 0.0
		for _, v := range s.Inputs[i].Data() {
			if v > 0.3 {
				sum += v
			}
		}
		switch l {
		case 1:
			one = sum
		case 8:
			eight = sum
		}
	}
	if one >= eight {
		t.Errorf("segment mass: one=%v eight=%v, want one < eight", one, eight)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad geometry should panic")
		}
	}()
	Digits(10, 4, 4, 0.1, 1)
}

// TestDigitsLearnable: a small network separates the ten digits.
func TestDigitsLearnable(t *testing.T) {
	s := Digits(400, 8, 6, 0.05, 3)
	train, test := s.Split(0.8)
	net := nn.NewNetwork(
		nn.NewFlatten("fl"),
		nn.NewDense("fc1", 48, 32, 4),
		nn.NewReLU("r"),
		nn.NewDense("fc2", 32, 10, 5),
	)
	opt := nn.SGD{LearningRate: 0.05}
	for e := 0; e < 20; e++ {
		for i := range train.Inputs {
			nn.TrainStep(net, opt, train.Inputs[i], train.Labels[i])
		}
	}
	if acc := nn.Accuracy(net, test.Inputs, test.Labels); acc < 0.95 {
		t.Errorf("digits accuracy = %.2f, want ≥ 0.95", acc)
	}
}
