// Package dataset generates deterministic synthetic datasets for the
// functional experiments. The paper trains on standard image corpora we do
// not ship; energy/latency results never depend on data values, and the
// functional results (convergence of in-situ training, quantization
// behaviour) only need controllable, reproducible class structure, which
// these generators provide.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"trident/internal/tensor"
)

// Set is a labelled dataset.
type Set struct {
	Inputs  []*tensor.Tensor
	Labels  []int
	Classes int
}

// Len returns the example count.
func (s *Set) Len() int { return len(s.Inputs) }

// Split partitions the set into train/test at the given fraction.
func (s *Set) Split(trainFrac float64) (train, test *Set) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	n := int(trainFrac * float64(s.Len()))
	train = &Set{Inputs: s.Inputs[:n], Labels: s.Labels[:n], Classes: s.Classes}
	test = &Set{Inputs: s.Inputs[n:], Labels: s.Labels[n:], Classes: s.Classes}
	return train, test
}

// Shuffle permutes the set in place with the given seed.
func (s *Set) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(s.Len(), func(i, j int) {
		s.Inputs[i], s.Inputs[j] = s.Inputs[j], s.Inputs[i]
		s.Labels[i], s.Labels[j] = s.Labels[j], s.Labels[i]
	})
}

// Blobs generates n points from `classes` isotropic Gaussian clusters in
// `dim` dimensions — linearly separable when spread ≪ cluster distance.
func Blobs(n, classes, dim int, spread float64, seed int64) *Set {
	if n <= 0 || classes <= 1 || dim <= 0 {
		panic(fmt.Sprintf("dataset: bad Blobs geometry n=%d classes=%d dim=%d", n, classes, dim))
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64()*2 - 1
		}
	}
	s := &Set{Classes: classes}
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, dim)
		for d := range x {
			x[d] = centers[c][d] + rng.NormFloat64()*spread
		}
		s.Inputs = append(s.Inputs, tensor.FromSlice(x, dim))
		s.Labels = append(s.Labels, c)
	}
	s.Shuffle(seed + 1)
	return s
}

// Spirals generates the two-class intertwined-spirals problem — not
// linearly separable, the classic test that a non-linearity (here the GST
// activation) is actually doing work.
func Spirals(n int, noise float64, seed int64) *Set {
	if n <= 0 {
		panic("dataset: Spirals needs n > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Set{Classes: 2}
	for i := 0; i < n; i++ {
		c := i % 2
		t := float64(i/2) / float64(n/2+1) * 3 * math.Pi
		r := 0.1 + 0.25*t/math.Pi
		phase := float64(c) * math.Pi
		x := r*math.Cos(t+phase) + rng.NormFloat64()*noise
		y := r*math.Sin(t+phase) + rng.NormFloat64()*noise
		s.Inputs = append(s.Inputs, tensor.FromSlice([]float64{x, y}, 2))
		s.Labels = append(s.Labels, c)
	}
	s.Shuffle(seed + 1)
	return s
}

// MiniImages generates `classes` procedural image classes on c×h×w grids:
// each class is a distinct oriented grating plus noise. This exercises the
// convolutional path end to end (spatial structure, channels) without any
// external data.
func MiniImages(n, classes, c, h, w int, noise float64, seed int64) *Set {
	if n <= 0 || classes <= 1 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("dataset: bad MiniImages geometry n=%d classes=%d %dx%dx%d", n, classes, c, h, w))
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Set{Classes: classes}
	for i := 0; i < n; i++ {
		cls := i % classes
		theta := math.Pi * float64(cls) / float64(classes)
		freq := 2*math.Pi/float64(w) + 0.2*float64(cls)
		img := tensor.New(c, h, w)
		phase := rng.Float64() * 2 * math.Pi
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					u := float64(x)*math.Cos(theta) + float64(y)*math.Sin(theta)
					v := math.Sin(freq*u+phase) + rng.NormFloat64()*noise
					img.Set(v, ch, y, x)
				}
			}
		}
		s.Inputs = append(s.Inputs, img)
		s.Labels = append(s.Labels, cls)
	}
	s.Shuffle(seed + 1)
	return s
}

// sevenSegment maps digits to segment activations (a,b,c,d,e,f,g).
var sevenSegment = [10][7]bool{
	{true, true, true, true, true, true, false},     // 0
	{false, true, true, false, false, false, false}, // 1
	{true, true, false, true, true, false, true},    // 2
	{true, true, true, true, false, false, true},    // 3
	{false, true, true, false, false, true, true},   // 4
	{true, false, true, true, false, true, true},    // 5
	{true, false, true, true, true, true, true},     // 6
	{true, true, true, false, false, false, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// Digits generates n procedural seven-segment digit images (classes 0–9)
// on 1×h×w grids with additive noise and per-sample brightness jitter — an
// MNIST-flavoured corpus with zero external data.
func Digits(n, h, w int, noise float64, seed int64) *Set {
	if n <= 0 || h < 7 || w < 5 {
		panic(fmt.Sprintf("dataset: bad Digits geometry n=%d %dx%d (min 7x5)", n, h, w))
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Set{Classes: 10}
	midY := h / 2
	for i := 0; i < n; i++ {
		d := i % 10
		img := tensor.New(1, h, w)
		bright := 0.8 + rng.Float64()*0.4
		seg := sevenSegment[d]
		drawH := func(y int) {
			for x := 1; x < w-1; x++ {
				img.Set(bright, 0, y, x)
			}
		}
		drawV := func(x, y0, y1 int) {
			for y := y0; y <= y1; y++ {
				img.Set(bright, 0, y, x)
			}
		}
		if seg[0] {
			drawH(0)
		}
		if seg[1] {
			drawV(w-1, 0, midY)
		}
		if seg[2] {
			drawV(w-1, midY, h-1)
		}
		if seg[3] {
			drawH(h - 1)
		}
		if seg[4] {
			drawV(0, midY, h-1)
		}
		if seg[5] {
			drawV(0, 0, midY)
		}
		if seg[6] {
			drawH(midY)
		}
		for j := range img.Data() {
			img.Data()[j] += rng.NormFloat64() * noise
		}
		s.Inputs = append(s.Inputs, img)
		s.Labels = append(s.Labels, d)
	}
	s.Shuffle(seed + 1)
	return s
}
