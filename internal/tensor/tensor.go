// Package tensor implements dense row-major float64 tensors with the
// parallel primitives the neural-network substrate needs: BLAS-style matrix
// multiplication, im2col convolution lowering, pooling and element-wise
// kernels. Heavy loops split across goroutines, one span per logical CPU.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Tensor is a dense row-major array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero tensor of the given shape. It panics on non-positive
// dimensions: shapes are static program structure, not runtime data.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
// It panics if the element count does not match.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: %d elements cannot take shape %v (%d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions (shared; callers must not mutate).
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice (shared).
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape of equal element
// count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d", d))
		}
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces every element x with f(x), in parallel for large tensors.
func (t *Tensor) Apply(f func(float64) float64) {
	parallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] = f(t.data[i])
		}
	})
}

// AddInPlace accumulates o into t element-wise. Shapes must match exactly.
func (t *Tensor) AddInPlace(o *Tensor) {
	t.requireSameShape(o)
	parallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] += o.data[i]
		}
	})
}

// AxpyInPlace computes t += alpha·o.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) {
	t.requireSameShape(o)
	parallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] += alpha * o.data[i]
		}
	})
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float64) {
	parallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] *= alpha
		}
	})
}

// HadamardInPlace computes t ⊙= o element-wise.
func (t *Tensor) HadamardInPlace(o *Tensor) {
	t.requireSameShape(o)
	parallelFor(len(t.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.data[i] *= o.data[i]
		}
	})
}

func (t *Tensor) requireSameShape(o *Tensor) {
	if len(t.shape) != len(o.shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, o.shape))
		}
	}
}

// Dot returns the inner product of two equal-length tensors viewed flat.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.data), len(b.data)))
	}
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// MaxAbs returns the largest absolute element, 0 for empty tensors.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), writing into
// dst (m×n), which is allocated if nil. Rows distribute across goroutines;
// the inner loops run in the cache-friendly ikj order.
func MatMul(dst, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul needs rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	if dst == nil {
		dst = New(m, n)
	} else {
		if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
			panic(fmt.Sprintf("tensor: MatMul dst shape %v, want [%d %d]", dst.shape, m, n))
		}
		dst.Zero()
	}
	ad, bd, cd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	return dst
}

// MatVec computes y = A·x for a 2-D tensor A (m×k) and a length-k vector x,
// writing into dst (length m), allocated if nil.
func MatVec(dst []float64, a *Tensor, x []float64) []float64 {
	if a.Rank() != 2 {
		panic("tensor: MatVec needs a rank-2 matrix")
	}
	m, k := a.shape[0], a.shape[1]
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec vector length %d, want %d", len(x), k))
	}
	if cap(dst) < m {
		dst = make([]float64, m)
	}
	dst = dst[:m]
	ad := a.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := ad[i*k : (i+1)*k]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			dst[i] = s
		}
	})
	return dst
}

// Transpose returns Aᵀ for a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose needs rank 2")
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Outer computes the outer product dst = x·yᵀ (len(x)×len(y)), allocated if
// dst is nil — the hardware operation of the weight-update pass.
func Outer(dst *Tensor, x, y []float64) *Tensor {
	m, n := len(x), len(y)
	if dst == nil {
		dst = New(m, n)
	} else if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: Outer dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	for i, xv := range x {
		row := dst.data[i*n : (i+1)*n]
		for j, yv := range y {
			row[j] = xv * yv
		}
	}
	return dst
}

// parallelChunk is the smallest work span worth a goroutine.
const parallelChunk = 4096

// parallelFor splits [0, n) across GOMAXPROCS goroutines when the span is
// large enough to amortize the fork/join, and runs inline otherwise.
func parallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelChunk || workers == 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	span := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += span {
		hi := lo + span
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
