package tensor

import "fmt"

// Conv2DSpec describes a 2-D convolution on CHW feature maps.
type Conv2DSpec struct {
	InC, InH, InW int // input channels and spatial size
	OutC          int // output channels
	KH, KW        int // kernel size
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
	Groups        int // 1 = dense, InC = depthwise
}

// Validate checks the spec for consistency and returns a descriptive error.
func (s Conv2DSpec) Validate() error {
	switch {
	case s.InC <= 0 || s.InH <= 0 || s.InW <= 0:
		return fmt.Errorf("tensor: conv input dims %dx%dx%d must be positive", s.InC, s.InH, s.InW)
	case s.OutC <= 0:
		return fmt.Errorf("tensor: conv output channels %d must be positive", s.OutC)
	case s.KH <= 0 || s.KW <= 0:
		return fmt.Errorf("tensor: conv kernel %dx%d must be positive", s.KH, s.KW)
	case s.StrideH <= 0 || s.StrideW <= 0:
		return fmt.Errorf("tensor: conv stride %dx%d must be positive", s.StrideH, s.StrideW)
	case s.PadH < 0 || s.PadW < 0:
		return fmt.Errorf("tensor: conv padding %dx%d must be non-negative", s.PadH, s.PadW)
	case s.Groups <= 0 || s.InC%s.Groups != 0 || s.OutC%s.Groups != 0:
		return fmt.Errorf("tensor: conv groups %d must divide channels %d/%d", s.Groups, s.InC, s.OutC)
	}
	if h, w := s.OutH(), s.OutW(); h <= 0 || w <= 0 {
		return fmt.Errorf("tensor: conv output %dx%d collapses to nothing", h, w)
	}
	return nil
}

// OutH returns the output height.
func (s Conv2DSpec) OutH() int { return (s.InH+2*s.PadH-s.KH)/s.StrideH + 1 }

// OutW returns the output width.
func (s Conv2DSpec) OutW() int { return (s.InW+2*s.PadW-s.KW)/s.StrideW + 1 }

// MACs returns the multiply-accumulate count of one forward pass — the
// quantity the dataflow cost model bills.
func (s Conv2DSpec) MACs() int64 {
	return int64(s.OutC) * int64(s.OutH()) * int64(s.OutW()) *
		int64(s.InC/s.Groups) * int64(s.KH) * int64(s.KW)
}

// WeightCount returns the number of kernel parameters (no bias).
func (s Conv2DSpec) WeightCount() int64 {
	return int64(s.OutC) * int64(s.InC/s.Groups) * int64(s.KH) * int64(s.KW)
}

// Im2Col lowers a CHW input into the (C/G·KH·KW) × (OutH·OutW) patch matrix
// for group g, so convolution becomes one MatMul per group. dst is
// allocated if nil.
func Im2Col(dst *Tensor, in *Tensor, s Conv2DSpec, g int) *Tensor {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if in.Rank() != 3 || in.Dim(0) != s.InC || in.Dim(1) != s.InH || in.Dim(2) != s.InW {
		panic(fmt.Sprintf("tensor: Im2Col input shape %v, want [%d %d %d]", in.Shape(), s.InC, s.InH, s.InW))
	}
	cg := s.InC / s.Groups
	rows := cg * s.KH * s.KW
	cols := s.OutH() * s.OutW()
	if dst == nil {
		dst = New(rows, cols)
	} else if dst.Rank() != 2 || dst.Dim(0) != rows || dst.Dim(1) != cols {
		panic(fmt.Sprintf("tensor: Im2Col dst shape %v, want [%d %d]", dst.Shape(), rows, cols))
	}
	outW := s.OutW()
	id, dd := in.Data(), dst.Data()
	parallelFor(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			c := g*cg + r/(s.KH*s.KW)
			kh := (r / s.KW) % s.KH
			kw := r % s.KW
			base := c * s.InH * s.InW
			drow := dd[r*cols : (r+1)*cols]
			for oc := 0; oc < cols; oc++ {
				oy := oc / outW
				ox := oc % outW
				iy := oy*s.StrideH - s.PadH + kh
				ix := ox*s.StrideW - s.PadW + kw
				if iy < 0 || iy >= s.InH || ix < 0 || ix >= s.InW {
					drow[oc] = 0
					continue
				}
				drow[oc] = id[base+iy*s.InW+ix]
			}
		}
	})
	return dst
}

// Conv2D computes the grouped 2-D convolution out = kernel ⊛ in via im2col.
// kernel has shape [OutC, InC/G·KH·KW]; in is CHW; the result is
// [OutC, OutH, OutW].
func Conv2D(in, kernel *Tensor, s Conv2DSpec) *Tensor {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	cg := s.InC / s.Groups
	ocg := s.OutC / s.Groups
	kcols := cg * s.KH * s.KW
	if kernel.Rank() != 2 || kernel.Dim(0) != s.OutC || kernel.Dim(1) != kcols {
		panic(fmt.Sprintf("tensor: Conv2D kernel shape %v, want [%d %d]", kernel.Shape(), s.OutC, kcols))
	}
	outH, outW := s.OutH(), s.OutW()
	out := New(s.OutC, outH, outW)
	cols := outH * outW
	for g := 0; g < s.Groups; g++ {
		patches := Im2Col(nil, in, s, g)
		kslice := FromSlice(kernel.Data()[g*ocg*kcols:(g+1)*ocg*kcols], ocg, kcols)
		prod := MatMul(nil, kslice, patches)
		copy(out.Data()[g*ocg*cols:(g+1)*ocg*cols], prod.Data())
	}
	return out
}

// conv2DNaive is the reference direct convolution used by the test suite to
// validate the im2col path. Exported to tests via export_test.go.
func conv2DNaive(in, kernel *Tensor, s Conv2DSpec) *Tensor {
	cg := s.InC / s.Groups
	ocg := s.OutC / s.Groups
	outH, outW := s.OutH(), s.OutW()
	out := New(s.OutC, outH, outW)
	for oc := 0; oc < s.OutC; oc++ {
		g := oc / ocg
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var acc float64
				for c := 0; c < cg; c++ {
					ic := g*cg + c
					for kh := 0; kh < s.KH; kh++ {
						iy := oy*s.StrideH - s.PadH + kh
						if iy < 0 || iy >= s.InH {
							continue
						}
						for kw := 0; kw < s.KW; kw++ {
							ix := ox*s.StrideW - s.PadW + kw
							if ix < 0 || ix >= s.InW {
								continue
							}
							kidx := (oc*cg+c)*s.KH*s.KW + kh*s.KW + kw
							acc += in.At(ic, iy, ix) * kernel.Data()[kidx]
						}
					}
				}
				out.Set(acc, oc, oy, ox)
			}
		}
	}
	return out
}

// PoolSpec describes a 2-D pooling window on CHW maps.
type PoolSpec struct {
	C, H, W int
	K       int // square window
	Stride  int
}

// Validate checks the pooling spec.
func (p PoolSpec) Validate() error {
	switch {
	case p.C <= 0 || p.H <= 0 || p.W <= 0:
		return fmt.Errorf("tensor: pool input %dx%dx%d must be positive", p.C, p.H, p.W)
	case p.K <= 0 || p.Stride <= 0:
		return fmt.Errorf("tensor: pool window %d stride %d must be positive", p.K, p.Stride)
	case p.K > p.H || p.K > p.W:
		return fmt.Errorf("tensor: pool window %d larger than input %dx%d", p.K, p.H, p.W)
	}
	return nil
}

// OutH returns the pooled height.
func (p PoolSpec) OutH() int { return (p.H-p.K)/p.Stride + 1 }

// OutW returns the pooled width.
func (p PoolSpec) OutW() int { return (p.W-p.K)/p.Stride + 1 }

// MaxPool2D computes max pooling and returns the output plus the flat argmax
// index of each window (for backprop routing).
func MaxPool2D(in *Tensor, p PoolSpec) (*Tensor, []int) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	outH, outW := p.OutH(), p.OutW()
	out := New(p.C, outH, outW)
	arg := make([]int, p.C*outH*outW)
	id := in.Data()
	parallelFor(p.C, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best, bi := -1e308, -1
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						rowBase := c*p.H*p.W + iy*p.W
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if v := id[rowBase+ix]; v > best {
								best, bi = v, rowBase+ix
							}
						}
					}
					oidx := c*outH*outW + oy*outW + ox
					out.Data()[oidx] = best
					arg[oidx] = bi
				}
			}
		}
	})
	return out, arg
}

// AvgPool2D computes average pooling.
func AvgPool2D(in *Tensor, p PoolSpec) *Tensor {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	outH, outW := p.OutH(), p.OutW()
	out := New(p.C, outH, outW)
	id := in.Data()
	norm := 1 / float64(p.K*p.K)
	parallelFor(p.C, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					var acc float64
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						rowBase := c*p.H*p.W + iy*p.W
						for kx := 0; kx < p.K; kx++ {
							acc += id[rowBase+ox*p.Stride+kx]
						}
					}
					out.Data()[c*outH*outW+oy*outW+ox] = acc * norm
				}
			}
		}
	})
	return out
}
