package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConv2DSpecValidate(t *testing.T) {
	good := Conv2DSpec{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Conv2DSpec{
		{InC: 0, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, Groups: 1},
		{InC: 3, InH: 8, InW: 8, OutC: 0, KH: 3, KW: 3, StrideH: 1, StrideW: 1, Groups: 1},
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 0, KW: 3, StrideH: 1, StrideW: 1, Groups: 1},
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 0, StrideW: 1, Groups: 1},
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: -1, Groups: 1},
		{InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, Groups: 2},
		{InC: 3, InH: 2, InW: 2, OutC: 4, KH: 5, KW: 5, StrideH: 1, StrideW: 1, Groups: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestConvOutputGeometry(t *testing.T) {
	// The canonical VGG first layer: 224×224, 3×3, pad 1, stride 1.
	s := Conv2DSpec{InC: 3, InH: 224, InW: 224, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
	if s.OutH() != 224 || s.OutW() != 224 {
		t.Errorf("same-padding output %dx%d, want 224x224", s.OutH(), s.OutW())
	}
	// AlexNet first layer: 227→55 with 11×11 stride 4 (or 224 with pad 2).
	s2 := Conv2DSpec{InC: 3, InH: 227, InW: 227, OutC: 96, KH: 11, KW: 11, StrideH: 4, StrideW: 4, Groups: 1}
	if s2.OutH() != 55 {
		t.Errorf("AlexNet conv1 out = %d, want 55", s2.OutH())
	}
}

func TestConvMACsAndWeights(t *testing.T) {
	// VGG conv1_1: 64×224×224×3×3×3 = 86,704,128 MACs, 1,728 weights.
	s := Conv2DSpec{InC: 3, InH: 224, InW: 224, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
	if got := s.MACs(); got != 86704128 {
		t.Errorf("MACs = %d, want 86704128", got)
	}
	if got := s.WeightCount(); got != 1728 {
		t.Errorf("weights = %d, want 1728", got)
	}
	// Depthwise 3×3 on 32 channels: each output channel sees 1 input channel.
	dw := Conv2DSpec{InC: 32, InH: 112, InW: 112, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 32}
	if got := dw.WeightCount(); got != 32*9 {
		t.Errorf("depthwise weights = %d, want 288", got)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// 1×1 convolution with identity weights copies the input.
	s := Conv2DSpec{InC: 2, InH: 4, InW: 4, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1, Groups: 1}
	in := New(2, 4, 4)
	rng := rand.New(rand.NewSource(2))
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	k := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	out := Conv2D(in, k, s)
	for i := range in.Data() {
		if out.Data()[i] != in.Data()[i] {
			t.Fatalf("identity conv differs at %d", i)
		}
	}
}

// Property: im2col convolution agrees with the direct reference for random
// shapes, strides, padding and groups.
func TestQuickConvMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := []int{1, 1, 2}[rng.Intn(3)]
		cg := 1 + rng.Intn(3)
		s := Conv2DSpec{
			InC:     groups * cg,
			InH:     4 + rng.Intn(8),
			InW:     4 + rng.Intn(8),
			OutC:    groups * (1 + rng.Intn(3)),
			KH:      1 + rng.Intn(3),
			KW:      1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2),
			StrideW: 1 + rng.Intn(2),
			PadH:    rng.Intn(2),
			PadW:    rng.Intn(2),
			Groups:  groups,
		}
		if s.Validate() != nil {
			return true // skip degenerate draws
		}
		in := New(s.InC, s.InH, s.InW)
		for i := range in.Data() {
			in.Data()[i] = rng.NormFloat64()
		}
		k := New(s.OutC, s.InC/s.Groups*s.KH*s.KW)
		for i := range k.Data() {
			k.Data()[i] = rng.NormFloat64()
		}
		fast := Conv2D(in, k, s)
		slow := Conv2DNaive(in, k, s)
		for i := range fast.Data() {
			if math.Abs(fast.Data()[i]-slow.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColZeroPadding(t *testing.T) {
	s := Conv2DSpec{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
	in := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(nil, in, s, 0)
	if cols.Dim(0) != 9 || cols.Dim(1) != 4 {
		t.Fatalf("im2col shape %v, want [9 4]", cols.Shape())
	}
	// Kernel center (row 4) over output (0,0) is input (0,0) = 1.
	if cols.At(4, 0) != 1 {
		t.Errorf("center tap = %v, want 1", cols.At(4, 0))
	}
	// Top-left tap (row 0) over output (0,0) reads padding = 0.
	if cols.At(0, 0) != 0 {
		t.Errorf("padding tap = %v, want 0", cols.At(0, 0))
	}
}

func TestPoolSpecValidate(t *testing.T) {
	if err := (PoolSpec{C: 1, H: 4, W: 4, K: 2, Stride: 2}).Validate(); err != nil {
		t.Fatalf("valid pool rejected: %v", err)
	}
	bad := []PoolSpec{
		{C: 0, H: 4, W: 4, K: 2, Stride: 2},
		{C: 1, H: 4, W: 4, K: 0, Stride: 2},
		{C: 1, H: 4, W: 4, K: 2, Stride: 0},
		{C: 1, H: 2, W: 2, K: 3, Stride: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pool %d accepted", i)
		}
	}
}

func TestMaxPool2D(t *testing.T) {
	in := FromSlice([]float64{
		1, 2, 5, 3,
		4, 8, 0, 1,
		0, 1, 9, 2,
		3, 2, 1, 7,
	}, 1, 4, 4)
	out, arg := MaxPool2D(in, PoolSpec{C: 1, H: 4, W: 4, K: 2, Stride: 2})
	want := []float64{8, 5, 3, 9}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
	// Argmax indices route gradients back to the winners.
	if arg[0] != 5 { // the "8" sits at flat index 5
		t.Errorf("arg[0] = %d, want 5", arg[0])
	}
	if in.Data()[arg[3]] != 9 {
		t.Errorf("arg[3] points at %v, want 9", in.Data()[arg[3]])
	}
}

func TestAvgPool2D(t *testing.T) {
	in := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := AvgPool2D(in, PoolSpec{C: 1, H: 4, W: 4, K: 2, Stride: 2})
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("avg[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
	// Global average pooling: the ResNet/GoogleNet head.
	g := AvgPool2D(in, PoolSpec{C: 1, H: 4, W: 4, K: 4, Stride: 4})
	if g.Len() != 1 || g.Data()[0] != 8.5 {
		t.Errorf("global avg = %v, want 8.5", g.Data())
	}
}

// Property: max pooling dominates average pooling element-wise.
func TestQuickMaxDominatesAvg(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := PoolSpec{C: 1 + rng.Intn(3), H: 4 + rng.Intn(6), W: 4 + rng.Intn(6), K: 2, Stride: 2}
		in := New(p.C, p.H, p.W)
		for i := range in.Data() {
			in.Data()[i] = rng.NormFloat64()
		}
		mx, _ := MaxPool2D(in, p)
		av := AvgPool2D(in, p)
		for i := range mx.Data() {
			if mx.Data()[i] < av.Data()[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzIm2ColShapes drives Im2Col with arbitrary geometries: any spec that
// validates must produce a patch matrix of the documented shape with only
// finite values.
func FuzzIm2ColShapes(f *testing.F) {
	f.Add(3, 8, 8, 3, 1, 1, 1)
	f.Add(1, 4, 6, 2, 2, 0, 1)
	f.Fuzz(func(t *testing.T, inC, inH, inW, k, stride, pad, groups int) {
		s := Conv2DSpec{InC: inC, InH: inH, InW: inW, OutC: groups, KH: k, KW: k,
			StrideH: stride, StrideW: stride, PadH: pad, PadW: pad, Groups: groups}
		if s.Validate() != nil {
			return
		}
		if int64(inC)*int64(inH)*int64(inW) > 1<<16 || s.MACs() > 1<<22 {
			return // keep fuzz iterations fast
		}
		in := New(s.InC, s.InH, s.InW)
		for i := range in.Data() {
			in.Data()[i] = float64(i%13) * 0.1
		}
		cols := Im2Col(nil, in, s, 0)
		wantRows := s.InC / s.Groups * s.KH * s.KW
		wantCols := s.OutH() * s.OutW()
		if cols.Dim(0) != wantRows || cols.Dim(1) != wantCols {
			t.Fatalf("im2col shape %v, want [%d %d]", cols.Shape(), wantRows, wantCols)
		}
	})
}
