package tensor

// Conv2DNaive exposes the reference convolution to the test suite.
var Conv2DNaive = conv2DNaive
