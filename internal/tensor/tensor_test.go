package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	a := New(2, 3)
	if a.Rank() != 2 || a.Len() != 6 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("bad geometry: rank=%d len=%d", a.Rank(), a.Len())
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v, want 5", a.At(1, 2))
	}
	// Row-major layout.
	if a.Data()[5] != 5 {
		t.Errorf("data[5] = %v, want 5 (row-major)", a.Data()[5])
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(2, 0)
}

func TestAtPanics(t *testing.T) {
	a := New(2, 2)
	for _, fn := range []func(){
		func() { a.At(2, 0) },
		func() { a.At(0, -1) },
		func() { a.At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access should panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	if a.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", a.At(1, 0))
	}
	d[0] = 9 // FromSlice shares the backing array
	if a.At(0, 0) != 9 {
		t.Error("FromSlice must not copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched FromSlice should panic")
		}
	}()
	FromSlice(d, 3, 3)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Set(7, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("Clone must copy data")
	}
}

func TestReshape(t *testing.T) {
	a := New(2, 6)
	a.Set(5, 1, 2)
	b := a.Reshape(3, 4)
	if b.At(2, 0) != 5 { // flat index 8
		t.Errorf("reshaped value = %v, want 5", b.At(2, 0))
	}
	b.Set(3, 0, 0)
	if a.At(0, 0) != 3 {
		t.Error("Reshape must alias the data")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad reshape should panic")
		}
	}()
	a.Reshape(5, 5)
}

func TestElementWiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	b := FromSlice([]float64{10, 20, 30, 40}, 4)
	a.AddInPlace(b)
	if a.Data()[3] != 44 {
		t.Errorf("AddInPlace: %v", a.Data())
	}
	a.AxpyInPlace(0.5, b)
	if a.Data()[0] != 16 {
		t.Errorf("AxpyInPlace: %v", a.Data())
	}
	a.Scale(2)
	if a.Data()[0] != 32 {
		t.Errorf("Scale: %v", a.Data())
	}
	a.HadamardInPlace(b)
	if a.Data()[0] != 320 {
		t.Errorf("Hadamard: %v", a.Data())
	}
	a.Apply(func(x float64) float64 { return -x })
	if a.Data()[0] != -320 {
		t.Errorf("Apply: %v", a.Data())
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Errorf("Zero/MaxAbs: %v", a.MaxAbs())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(4)
	defer func() {
		if recover() == nil {
			t.Error("AddInPlace with mismatched shapes should panic")
		}
	}()
	a.AddInPlace(b)
}

func TestDotAndArgMax(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	c := FromSlice([]float64{-5, 2, 1}, 3)
	if got := c.ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	if got := c.MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(nil, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Errorf("C[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
	// Reuse dst (must zero first internally).
	c2 := MatMul(c, a, b)
	for i, w := range want {
		if c2.Data()[i] != w {
			t.Errorf("reused C[%d] = %v, want %v", i, c2.Data()[i], w)
		}
	}
}

// TestMatMulLargeParallel exercises the multi-goroutine path against a
// sequential reference.
func TestMatMulLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, k, n := 130, 70, 90
	a, b := New(m, k), New(k, n)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	for i := range b.Data() {
		b.Data()[i] = rng.NormFloat64()
	}
	c := MatMul(nil, a, b)
	for trial := 0; trial < 50; trial++ {
		i, j := rng.Intn(m), rng.Intn(n)
		var want float64
		for p := 0; p < k; p++ {
			want += a.At(i, p) * b.At(p, j)
		}
		if math.Abs(c.At(i, j)-want) > 1e-9 {
			t.Fatalf("C[%d,%d] = %v, want %v", i, j, c.At(i, j), want)
		}
	}
}

func TestMatMulPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MatMul(nil, New(2, 3), New(4, 2)) },
		func() { MatMul(New(3, 3), New(2, 3), New(3, 2)) },
		func() { MatMul(nil, New(2), New(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid MatMul should panic")
				}
			}()
			fn()
		}()
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := MatVec(nil, a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MatVec = %v, want [-2 -2]", y)
	}
	dst := make([]float64, 2)
	y2 := MatVec(dst, a, []float64{1, 1, 1})
	if &y2[0] != &dst[0] {
		t.Error("MatVec must reuse dst")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad vector length should panic")
		}
	}()
	MatVec(nil, a, []float64{1})
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("shape %v, want [3 2]", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("transpose values wrong: %v", at.Data())
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(m, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		b := Transpose(Transpose(a))
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec(A, x) agrees with MatMul(A, x-as-column).
func TestQuickMatVecMatMulAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k := 1+rng.Intn(10), 1+rng.Intn(10)
		a := New(m, k)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		x := make([]float64, k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := MatVec(nil, a, x)
		col := MatMul(nil, a, FromSlice(append([]float64(nil), x...), k, 1))
		for i := range y {
			if math.Abs(y[i]-col.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOuter(t *testing.T) {
	o := Outer(nil, []float64{1, 2}, []float64{3, 4, 5})
	if o.Dim(0) != 2 || o.Dim(1) != 3 {
		t.Fatalf("shape %v", o.Shape())
	}
	if o.At(1, 2) != 10 || o.At(0, 0) != 3 {
		t.Errorf("outer values: %v", o.Data())
	}
	// Outer must equal MatMul of column × row.
	a := FromSlice([]float64{1, 2}, 2, 1)
	b := FromSlice([]float64{3, 4, 5}, 1, 3)
	m := MatMul(nil, a, b)
	for i := range m.Data() {
		if m.Data()[i] != o.Data()[i] {
			t.Errorf("Outer disagrees with MatMul at %d", i)
		}
	}
}
