package pcm

import (
	"fmt"
	"math"

	"trident/internal/device"
	"trident/internal/units"
)

// ActivationCell models the GST photonic activation of Fig. 3: a 60 µm ring
// resonator with a GST patch at the ring/waveguide crossing. With the GST
// crystalline, the weighted-sum pulse couples into the ring and no output
// emerges. A pulse whose energy exceeds the switching threshold amorphizes
// the GST, detuning the ring so the pulse transmits — the cell fires only
// above threshold, a ReLU-like non-linearity executed at optical speed with
// no ADC.
//
// The transfer function implemented here matches the published measurement
// at 1553.4 nm: zero output below the 430 pJ threshold, then transmission
// rising with slope device.ActivationDerivativeHigh (0.34 in normalized
// units) until it saturates at the cell's maximum transmission contrast.
type ActivationCell struct {
	threshold units.Energy
	slope     float64 // d(output)/d(input) above threshold, normalized
	maxOut    float64 // saturated normalized output level

	fires  uint64
	resets uint64
	energy units.Energy
}

// ActivationConfig parameterizes an ActivationCell. Zero fields take the
// paper's published values.
type ActivationConfig struct {
	Threshold units.Energy // switching threshold; default 430 pJ
	Slope     float64      // above-threshold slope; default 0.34
	MaxOutput float64      // saturation level (normalized); default 1.0
}

// NewActivationCell returns a cell in the crystalline (non-transmitting)
// state.
func NewActivationCell(cfg ActivationConfig) (*ActivationCell, error) {
	if cfg.Threshold == 0 {
		cfg.Threshold = device.ActivationThresholdEnergy
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("pcm: negative activation threshold %v", cfg.Threshold)
	}
	if cfg.Slope == 0 {
		cfg.Slope = device.ActivationDerivativeHigh
	}
	if cfg.Slope < 0 {
		return nil, fmt.Errorf("pcm: negative activation slope %v", cfg.Slope)
	}
	if cfg.MaxOutput == 0 {
		cfg.MaxOutput = 1.0
	}
	if cfg.MaxOutput < 0 {
		return nil, fmt.Errorf("pcm: negative max output %v", cfg.MaxOutput)
	}
	return &ActivationCell{
		threshold: cfg.Threshold,
		slope:     cfg.Slope,
		maxOut:    cfg.MaxOutput,
	}, nil
}

// Threshold returns the switching threshold energy.
func (a *ActivationCell) Threshold() units.Energy { return a.threshold }

// Apply runs one activation event on an input pulse of the given energy and
// returns the normalized output amplitude. Inputs are measured in units of
// the threshold energy internally, so the normalized transfer function is
//
//	f(x) = 0                    x < 1   (below threshold)
//	f(x) = min(s·(x−1), max)    x ≥ 1   (above threshold)
//
// where x = E/E_threshold and s = 0.34. Firing consumes the cell's
// crystalline state; Reset must recrystallize it before the next event (the
// paper resets every cell after each activation, which is what
// device.PowerActivationReset accounts for).
func (a *ActivationCell) Apply(pulse units.Energy) float64 {
	x := float64(pulse) / float64(a.threshold)
	if math.IsNaN(x) || x < 1 {
		return 0
	}
	a.fires++
	out := a.slope * (x - 1)
	if out > a.maxOut {
		out = a.maxOut
	}
	return out
}

// ApplyNormalized evaluates the same transfer function on a dimensionless
// pre-activation value h (already normalized so that the threshold sits at
// h = 1). It is the form used by the neural-network layers.
func (a *ActivationCell) ApplyNormalized(h float64) float64 {
	return a.Apply(units.Energy(h) * a.threshold)
}

// Derivative returns f'(h) of the normalized transfer function: 0.34 above
// threshold (below saturation) and 0 elsewhere. This is exactly the
// two-valued derivative the LDSU latches.
func (a *ActivationCell) Derivative(h float64) float64 {
	if math.IsNaN(h) || h < 1 {
		return device.ActivationDerivativeLow
	}
	if a.slope*(h-1) >= a.maxOut {
		return 0 // saturated
	}
	return a.slope
}

// Reset recrystallizes the cell after a firing event, restoring the
// non-transmitting state. It returns the reset energy spent (zero if the
// cell has not fired since the last reset).
func (a *ActivationCell) Reset() units.Energy {
	if a.fires == a.resets {
		return 0
	}
	a.resets++
	// The Table III activation-reset budget is per PE row at the clock
	// rate; one reset therefore costs that power over one clock period.
	perRow := units.Power(float64(device.PowerActivationReset) / float64(device.WeightBankRows))
	e := perRow.OverTime(device.ClockRate.Period())
	a.energy += e
	return e
}

// Fires returns the number of firing (above-threshold) events.
func (a *ActivationCell) Fires() uint64 { return a.fires }

// Resets returns the number of recrystallization events.
func (a *ActivationCell) Resets() uint64 { return a.resets }

// EnergyConsumed returns the cumulative reset energy.
func (a *ActivationCell) EnergyConsumed() units.Energy { return a.energy }

// RemainingEndurance returns the fraction of PCM switching endurance left,
// counting each fire+reset pair as one cycle.
func (a *ActivationCell) RemainingEndurance() float64 {
	used := float64(a.resets) / device.GSTEnduranceCycles
	if used > 1 {
		return 0
	}
	return 1 - used
}

// Curve samples the normalized transfer function at n evenly spaced inputs
// on [0, xMax] (in threshold units) without consuming endurance — the
// generator for Fig. 3.
func (a *ActivationCell) Curve(n int, xMax float64) (xs, ys []float64) {
	if n < 2 {
		n = 2
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		x := xMax * float64(i) / float64(n-1)
		xs[i] = x
		if x < 1 {
			ys[i] = 0
		} else {
			y := a.slope * (x - 1)
			if y > a.maxOut {
				y = a.maxOut
			}
			ys[i] = y
		}
	}
	return xs, ys
}
