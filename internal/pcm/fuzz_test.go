package pcm

import (
	"math"
	"testing"

	"trident/internal/units"
)

// FuzzActivationCell checks the activation transfer function's safety
// invariants against arbitrary pulse energies.
func FuzzActivationCell(f *testing.F) {
	f.Add(0.0)
	f.Add(430e-12)
	f.Add(860e-12)
	f.Add(-1e-9)
	f.Add(1.0)
	cell, err := NewActivationCell(ActivationConfig{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, joules float64) {
		out := cell.Apply(units.Energy(joules))
		if math.IsNaN(out) || out < 0 || out > 1 {
			t.Fatalf("Apply(%v J) = %v escaped [0,1]", joules, out)
		}
		// Below threshold must stay dark.
		if joules < 430e-12 && out != 0 {
			t.Fatalf("sub-threshold pulse %v J produced output %v", joules, out)
		}
	})
}

// FuzzCellProgram checks that arbitrary level sequences keep the cell's
// transmission inside its physical range and its counters consistent.
func FuzzCellProgram(f *testing.F) {
	f.Add(0, 127)
	f.Add(254, 0)
	f.Add(1, 1)
	f.Fuzz(func(t *testing.T, a, b int) {
		cell, err := NewCell(CellConfig{})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := cell.TransmissionRange()
		for _, lvl := range []int{a, b} {
			_, err := cell.Program(lvl, 0)
			if lvl < 0 || lvl >= cell.Levels() {
				if err == nil {
					t.Fatalf("Program(%d) accepted out-of-range level", lvl)
				}
				continue
			}
			if err != nil {
				t.Fatalf("Program(%d): %v", lvl, err)
			}
			tr := cell.Transmission()
			if tr < lo-1e-15 || tr > hi+1e-15 {
				t.Fatalf("transmission %v outside [%v,%v]", tr, lo, hi)
			}
		}
		if cell.Writes() > 2 {
			t.Fatalf("write counter %d exceeds operations", cell.Writes())
		}
	})
}
