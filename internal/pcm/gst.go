// Package pcm models Ge2Sb2Te5 (GST) phase-change material as used by the
// Trident architecture for two distinct purposes:
//
//   - weight storage: a GST patch on a microring waveguide acts as a
//     programmable, non-volatile attenuator with 255 distinguishable states
//     (8-bit resolution), written with 660 pJ optical pulses in 300 ns and
//     read with 20 pJ pulses;
//   - non-linear activation: a GST cell at a ring/waveguide crossing switches
//     from crystalline (absorbing) to amorphous (transmitting) only when the
//     weighted-sum pulse exceeds a threshold energy, realizing a ReLU-like
//     activation entirely in the optical domain (Fig. 3 of the paper).
//
// The package also implements the Linear Derivative Storage Unit (LDSU): the
// comparator + D-flip-flop pair that latches the activation derivative during
// the forward pass so in-situ backpropagation never fetches f'(h) from memory.
package pcm

import (
	"errors"
	"fmt"
	"math"

	"trident/internal/device"
	"trident/internal/units"
)

// Complex refractive indices of GST at 1550 nm. Values follow the
// measurements cited by the paper's device references (Zhang et al., Guo et
// al.): the amorphous phase is nearly transparent, the crystalline phase is
// strongly absorbing.
var (
	// AmorphousIndex is n + ik of amorphous GST at 1550 nm.
	AmorphousIndex = complex(4.6, 0.18)
	// CrystallineIndex is n + ik of crystalline GST at 1550 nm.
	CrystallineIndex = complex(7.2, 1.90)
)

// EffectiveIndex returns the complex refractive index of partially
// crystallized GST with crystalline volume fraction chi ∈ [0, 1], using the
// Maxwell-Garnett effective-medium approximation with crystalline inclusions
// in an amorphous host. The fraction is clamped to [0, 1].
func EffectiveIndex(chi float64) complex128 {
	if chi <= 0 {
		return AmorphousIndex
	}
	if chi >= 1 {
		return CrystallineIndex
	}
	eh := AmorphousIndex * AmorphousIndex     // host permittivity
	ei := CrystallineIndex * CrystallineIndex // inclusion permittivity
	f := complex(chi, 0)
	// Maxwell-Garnett: (ε−εh)/(ε+2εh) = f (εi−εh)/(εi+2εh)
	r := f * (ei - eh) / (ei + 2*eh)
	eps := eh * (1 + 2*r) / (1 - r)
	return sqrtComplex(eps)
}

// sqrtComplex returns the principal square root with non-negative imaginary
// part (a passive material absorbs; it never amplifies).
func sqrtComplex(z complex128) complex128 {
	r := math.Hypot(real(z), imag(z))
	re := math.Sqrt((r + real(z)) / 2)
	im := math.Sqrt((r - real(z)) / 2)
	if imag(z) < 0 {
		im = -im
	}
	if im < 0 {
		re, im = -re, -im
	}
	return complex(re, im)
}

// AbsorptionCoefficient returns the intensity absorption coefficient
// α = 4πk/λ (per meter) for crystalline fraction chi at wavelength lambda.
func AbsorptionCoefficient(chi float64, lambda units.Length) float64 {
	k := imag(EffectiveIndex(chi))
	return 4 * math.Pi * k / lambda.Meters()
}

// Transmission returns the optical power transmission exp(−αL) of a GST
// patch of length patchLen with crystalline fraction chi at wavelength
// lambda. The modal confinement factor gamma scales how much of the guided
// mode overlaps the GST (typical integrated cells: 0.05–0.2).
func Transmission(chi float64, patchLen units.Length, gamma float64, lambda units.Length) float64 {
	alpha := AbsorptionCoefficient(chi, lambda)
	return math.Exp(-alpha * gamma * patchLen.Meters())
}

// Cell is one programmable GST patch: the weight-storage element embedded in
// each weight-bank microring. Its state is one of device.GSTLevels
// crystalline fractions; level 0 is fully crystalline (maximum absorption,
// smallest weight), level GSTLevels−1 fully amorphous (maximum transmission,
// largest weight) — matching the paper's "amorphous = large weight,
// crystalline = small weight".
type Cell struct {
	level    int
	levels   int
	patchLen units.Length
	gamma    float64
	lambda   units.Length

	writes    uint64  // endurance cycles consumed
	endurance float64 // switching-endurance budget of this specific cell
	energy    units.Energy
	busyUntil units.Duration // completion time of the in-flight write
}

// CellConfig parameterizes a GST cell. The zero value is replaced by
// defaults suitable for an integrated weight cell.
type CellConfig struct {
	Levels      int          // programmable states; default device.GSTLevels
	PatchLength units.Length // GST patch length; default 1.2 µm
	Confinement float64      // modal overlap Γ; default 0.12
	Wavelength  units.Length // operating wavelength; default 1550 nm
	// EnduranceCycles is the switching-endurance budget of this cell;
	// default device.GSTEnduranceCycles. Fabricated cells spread around the
	// nominal figure, so lifetime simulations assign per-cell budgets drawn
	// from a wear distribution (internal/reliability).
	EnduranceCycles float64
}

// ErrWornOut reports a cell past its switching endurance.
var ErrWornOut = errors.New("pcm: cell exceeded GST switching endurance")

// NewCell returns a fully crystalline cell (level 0) with cfg defaults
// filled in.
func NewCell(cfg CellConfig) (*Cell, error) {
	if cfg.Levels == 0 {
		cfg.Levels = device.GSTLevels
	}
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("pcm: cell needs ≥2 levels (got %d)", cfg.Levels)
	}
	if cfg.PatchLength == 0 {
		cfg.PatchLength = 1.2 * units.Micrometer
	}
	if cfg.PatchLength < 0 {
		return nil, fmt.Errorf("pcm: negative patch length %v", cfg.PatchLength)
	}
	if cfg.Confinement == 0 {
		cfg.Confinement = 0.12
	}
	if cfg.Confinement < 0 || cfg.Confinement > 1 {
		return nil, fmt.Errorf("pcm: confinement %v outside [0,1]", cfg.Confinement)
	}
	if cfg.Wavelength == 0 {
		cfg.Wavelength = 1550 * units.Nanometer
	}
	if cfg.EnduranceCycles == 0 {
		cfg.EnduranceCycles = device.GSTEnduranceCycles
	}
	if cfg.EnduranceCycles < 0 {
		return nil, fmt.Errorf("pcm: negative endurance budget %v", cfg.EnduranceCycles)
	}
	return &Cell{
		levels:    cfg.Levels,
		patchLen:  cfg.PatchLength,
		gamma:     cfg.Confinement,
		lambda:    cfg.Wavelength,
		endurance: cfg.EnduranceCycles,
	}, nil
}

// Levels returns the number of programmable states.
func (c *Cell) Levels() int { return c.levels }

// Level returns the current programmed level.
func (c *Cell) Level() int { return c.level }

// CrystallineFraction returns χ for the current level: level 0 is χ=1
// (fully crystalline), the top level is χ=0 (fully amorphous).
func (c *Cell) CrystallineFraction() float64 {
	return 1 - float64(c.level)/float64(c.levels-1)
}

// Program writes the cell to the given level using an optical write pulse.
// Reprogramming to the same level is a no-op costing nothing: the control
// unit compares before writing, and GST is non-volatile so an equal state
// needs no refresh. It returns the time at which the write completes, given
// that it was issued at time now, and an error if the cell's endurance is
// exhausted or the level is out of range.
func (c *Cell) Program(level int, now units.Duration) (done units.Duration, err error) {
	if level < 0 || level >= c.levels {
		return now, fmt.Errorf("pcm: level %d outside [0,%d)", level, c.levels)
	}
	if level == c.level {
		return now, nil
	}
	if float64(c.writes) >= c.endurance {
		return now, ErrWornOut
	}
	return c.pulse(level, now), nil
}

// Rewrite re-issues a write pulse at the cell's current level — the refresh
// operation a controller uses to re-amorphize a drifted state. Unlike
// Program, an equal level is not a no-op: the pulse is physically emitted,
// consuming one endurance cycle and the full write energy. It returns
// ErrWornOut when the cell has no endurance left.
func (c *Cell) Rewrite(now units.Duration) (done units.Duration, err error) {
	if float64(c.writes) >= c.endurance {
		return now, ErrWornOut
	}
	return c.pulse(c.level, now), nil
}

// pulse books one write pulse landing the cell at level.
func (c *Cell) pulse(level int, now units.Duration) units.Duration {
	c.level = level
	c.writes++
	c.energy += device.GSTWriteEnergy
	c.busyUntil = now + device.GSTWriteTime
	return c.busyUntil
}

// Transmission returns the linear optical power transmission of the cell in
// its current state. It is strictly increasing with level.
func (c *Cell) Transmission() float64 {
	return Transmission(c.CrystallineFraction(), c.patchLen, c.gamma, c.lambda)
}

// TransmissionRange returns the (min, max) transmission across the cell's
// programmable range — the extinction window available for weighting.
func (c *Cell) TransmissionRange() (lo, hi float64) {
	lo = Transmission(1, c.patchLen, c.gamma, c.lambda)
	hi = Transmission(0, c.patchLen, c.gamma, c.lambda)
	return lo, hi
}

// Read models a 20 pJ read pulse and returns the transmission.
func (c *Cell) Read() float64 {
	c.energy += device.GSTReadEnergy
	return c.Transmission()
}

// Writes returns the number of endurance cycles consumed.
func (c *Cell) Writes() uint64 { return c.writes }

// EnergyConsumed returns the cumulative optical programming/read energy.
func (c *Cell) EnergyConsumed() units.Energy { return c.energy }

// RemainingEndurance returns the fraction of switching endurance left.
func (c *Cell) RemainingEndurance() float64 {
	used := float64(c.writes) / c.endurance
	if used > 1 {
		return 0
	}
	return 1 - used
}

// EnduranceLimit returns the cell's switching-endurance budget in cycles.
func (c *Cell) EnduranceLimit() float64 { return c.endurance }

// SetEnduranceLimit overrides the cell's endurance budget — the hook the
// reliability engine uses to assign Weibull-sampled per-cell lifetimes.
// Non-positive budgets are clamped to zero (an already-dead cell).
func (c *Cell) SetEnduranceLimit(cycles float64) {
	if cycles < 0 || math.IsNaN(cycles) {
		cycles = 0
	}
	c.endurance = cycles
}

// WornOut reports whether the cell has exhausted its switching endurance:
// the next state-changing write will fail with ErrWornOut.
func (c *Cell) WornOut() bool { return float64(c.writes) >= c.endurance }
