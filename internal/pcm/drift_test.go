package pcm

import (
	"math"
	"testing"
	"testing/quick"

	"trident/internal/device"
	"trident/internal/units"
)

func midCell(t *testing.T) *Cell {
	t.Helper()
	c, err := NewCell(CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(127, 0); err != nil { // mid-range state
		t.Fatal(err)
	}
	return c
}

func TestDriftShrinksTransmission(t *testing.T) {
	c := midCell(t)
	t0 := c.Transmission()
	year := 365.25 * 24 * 3600 * units.Second
	t1 := c.TransmissionAfter(year)
	if t1 > t0 {
		t.Errorf("drift increased transmission: %v → %v", t0, t1)
	}
	if t1 <= 0 {
		t.Errorf("drifted transmission %v must stay positive", t1)
	}
	// Short holds are drift-free.
	if got := c.TransmissionAfter(100 * units.Millisecond); got != t0 {
		t.Errorf("sub-second hold drifted: %v → %v", t0, got)
	}
}

func TestDriftMonotoneInTime(t *testing.T) {
	c := midCell(t)
	prev := c.Transmission()
	for _, secs := range []float64{10, 1e3, 1e5, 1e7, 1e9} {
		cur := c.TransmissionAfter(units.Duration(secs))
		if cur > prev+1e-15 {
			t.Fatalf("drift not monotone at %vs: %v > %v", secs, cur, prev)
		}
		prev = cur
	}
}

func TestCrystallineDoesNotDrift(t *testing.T) {
	c, err := NewCell(CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Level 0: fully crystalline equilibrium phase.
	decade := 10 * 365.25 * 24 * 3600 * units.Second
	if got, want := c.TransmissionAfter(decade), c.Transmission(); got != want {
		t.Errorf("crystalline cell drifted: %v → %v", want, got)
	}
}

// TestTenYearRetention reproduces the paper's headline: a programmed cell
// still reads within half a level after 10 years.
func TestTenYearRetention(t *testing.T) {
	for _, level := range []int{1, 64, 127, 200, 254} {
		c, err := NewCell(CellConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Program(level, 0); err != nil {
			t.Fatal(err)
		}
		if !c.RetentionOK(device.GSTRetention) {
			t.Errorf("level %d: drift error %.2f levels after 10 years, want ≤ 0.5",
				level, c.DriftLevelError(device.GSTRetention))
		}
	}
}

// Property: drift error grows with hold time and never goes negative.
func TestQuickDriftErrorMonotone(t *testing.T) {
	c := midCell(t)
	f := func(rawA, rawB float64) bool {
		a := units.Duration(math.Mod(math.Abs(rawA), 3e8) + 1)
		b := units.Duration(math.Mod(math.Abs(rawB), 3e8) + 1)
		if a > b {
			a, b = b, a
		}
		ea, eb := c.DriftLevelError(a), c.DriftLevelError(b)
		return ea >= 0 && eb >= ea-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateLifetime(t *testing.T) {
	// Continuous in-situ training at the Table V MobileNetV2 rate:
	// ≈1543 samples/s × 3 rewrites / 8 mini-batch ≈ 579 writes/s.
	est, err := EstimateLifetime(579)
	if err != nil {
		t.Fatal(err)
	}
	years := est.Lifetime.Seconds() / (365.25 * 24 * 3600)
	// 1e12 cycles / 579 Hz ≈ 54.7 years: endurance is not the limiter,
	// exactly the paper's argument.
	if years < 10 {
		t.Errorf("lifetime = %.1f years at training rate, paper argues endurance is ample", years)
	}
	if est.TrainingSamples < 1e12 {
		t.Errorf("training samples = %g, want > 1e12", est.TrainingSamples)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := EstimateLifetime(bad); err == nil {
			t.Errorf("EstimateLifetime(%v): want error", bad)
		}
	}
}
