package pcm

import (
	"math"
	"testing"
	"testing/quick"

	"trident/internal/device"
	"trident/internal/units"
)

func TestEffectiveIndexEndpoints(t *testing.T) {
	if got := EffectiveIndex(0); got != AmorphousIndex {
		t.Errorf("EffectiveIndex(0) = %v, want amorphous %v", got, AmorphousIndex)
	}
	if got := EffectiveIndex(1); got != CrystallineIndex {
		t.Errorf("EffectiveIndex(1) = %v, want crystalline %v", got, CrystallineIndex)
	}
	// Clamping outside [0,1].
	if got := EffectiveIndex(-0.5); got != AmorphousIndex {
		t.Errorf("EffectiveIndex(-0.5) = %v, want clamp to amorphous", got)
	}
	if got := EffectiveIndex(1.5); got != CrystallineIndex {
		t.Errorf("EffectiveIndex(1.5) = %v, want clamp to crystalline", got)
	}
}

// Property: the effective extinction coefficient is positive (passive
// material) and bounded by the crystalline endpoint.
func TestQuickEffectiveIndexPhysical(t *testing.T) {
	f := func(raw float64) bool {
		chi := math.Mod(math.Abs(raw), 1)
		n := EffectiveIndex(chi)
		return imag(n) >= imag(AmorphousIndex)-1e-12 &&
			imag(n) <= imag(CrystallineIndex)+1e-12 &&
			real(n) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: absorption grows monotonically with crystalline fraction —
// "in the crystalline state most of the light is absorbed".
func TestAbsorptionMonotonic(t *testing.T) {
	lambda := 1550 * units.Nanometer
	prev := -1.0
	for chi := 0.0; chi <= 1.0001; chi += 0.01 {
		a := AbsorptionCoefficient(chi, lambda)
		if a <= prev {
			t.Fatalf("absorption not strictly increasing at χ=%.2f: %v ≤ %v", chi, a, prev)
		}
		prev = a
	}
}

func TestTransmissionBounds(t *testing.T) {
	lambda := 1550 * units.Nanometer
	patch := 1.2 * units.Micrometer
	for chi := 0.0; chi <= 1.0; chi += 0.05 {
		tr := Transmission(chi, patch, 0.12, lambda)
		if tr <= 0 || tr > 1 {
			t.Errorf("transmission at χ=%.2f = %v, want in (0,1]", chi, tr)
		}
	}
	amorph := Transmission(0, patch, 0.12, lambda)
	cryst := Transmission(1, patch, 0.12, lambda)
	if amorph <= cryst {
		t.Errorf("amorphous transmission %v must exceed crystalline %v", amorph, cryst)
	}
}

func TestNewCellDefaults(t *testing.T) {
	c, err := NewCell(CellConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Levels() != device.GSTLevels {
		t.Errorf("default levels = %d, want %d", c.Levels(), device.GSTLevels)
	}
	if c.Level() != 0 {
		t.Errorf("fresh cell level = %d, want 0 (crystalline)", c.Level())
	}
	if c.CrystallineFraction() != 1 {
		t.Errorf("fresh cell χ = %v, want 1", c.CrystallineFraction())
	}
}

func TestNewCellValidation(t *testing.T) {
	bad := []CellConfig{
		{Levels: 1},
		{PatchLength: -1 * units.Micrometer},
		{Confinement: -0.1},
		{Confinement: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewCell(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestCellProgramAndRead(t *testing.T) {
	c, _ := NewCell(CellConfig{})
	done, err := c.Program(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != device.GSTWriteTime {
		t.Errorf("write completes at %v, want %v", done, device.GSTWriteTime)
	}
	if c.Level() != 100 || c.Writes() != 1 {
		t.Errorf("level=%d writes=%d, want 100 and 1", c.Level(), c.Writes())
	}
	if c.EnergyConsumed() != device.GSTWriteEnergy {
		t.Errorf("energy = %v, want one write pulse %v", c.EnergyConsumed(), device.GSTWriteEnergy)
	}
	// Same-level rewrite is free (non-volatile state needs no refresh).
	done2, err := c.Program(100, done)
	if err != nil || done2 != done || c.Writes() != 1 {
		t.Errorf("same-level write: done=%v err=%v writes=%d, want no-op", done2, err, c.Writes())
	}
	pre := c.EnergyConsumed()
	tr := c.Read()
	if math.Abs(float64(c.EnergyConsumed()-pre-device.GSTReadEnergy)) > 1e-24 {
		t.Errorf("read energy = %v, want %v", c.EnergyConsumed()-pre, device.GSTReadEnergy)
	}
	if tr != c.Transmission() {
		t.Error("Read() must return the current transmission")
	}
}

func TestCellProgramValidation(t *testing.T) {
	c, _ := NewCell(CellConfig{})
	if _, err := c.Program(-1, 0); err == nil {
		t.Error("negative level: want error")
	}
	if _, err := c.Program(device.GSTLevels, 0); err == nil {
		t.Error("level == Levels: want error")
	}
}

// Property: transmission is strictly monotonic in programmed level across
// the whole 255-state range — required for 8-bit weighting.
func TestCellTransmissionMonotonicInLevel(t *testing.T) {
	c, _ := NewCell(CellConfig{})
	prev := -1.0
	for lvl := 0; lvl < c.Levels(); lvl++ {
		if _, err := c.Program(lvl, 0); err != nil {
			t.Fatal(err)
		}
		tr := c.Transmission()
		if tr <= prev {
			t.Fatalf("transmission not increasing at level %d: %v ≤ %v", lvl, tr, prev)
		}
		prev = tr
	}
}

func TestCellTransmissionRange(t *testing.T) {
	c, _ := NewCell(CellConfig{})
	lo, hi := c.TransmissionRange()
	if lo >= hi {
		t.Fatalf("range [%v,%v] inverted", lo, hi)
	}
	if c.Transmission() != lo {
		t.Errorf("fresh (crystalline) cell transmission = %v, want range min %v", c.Transmission(), lo)
	}
	if _, err := c.Program(c.Levels()-1, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Transmission(); math.Abs(got-hi) > 1e-15 {
		t.Errorf("fully amorphous transmission = %v, want range max %v", got, hi)
	}
	// The extinction window must be deep enough for 8-bit weighting:
	// at least a 3 dB contrast between endpoints.
	if hi/lo < 2 {
		t.Errorf("extinction contrast %.2f× too shallow for weighting", hi/lo)
	}
}

func TestCellEndurance(t *testing.T) {
	c, _ := NewCell(CellConfig{Levels: 3})
	if c.RemainingEndurance() != 1 {
		t.Errorf("fresh endurance = %v, want 1", c.RemainingEndurance())
	}
	// Simulate wear-out by forcing the write counter to the endurance limit.
	c.writes = uint64(device.GSTEnduranceCycles)
	if _, err := c.Program(1, 0); err == nil {
		t.Error("worn cell must refuse writes")
	} else if err != ErrWornOut && !isWrapped(err, ErrWornOut) {
		t.Errorf("want ErrWornOut, got %v", err)
	}
	if c.RemainingEndurance() != 0 {
		t.Errorf("worn endurance = %v, want 0", c.RemainingEndurance())
	}
}

func isWrapped(err, target error) bool { return err == target }
