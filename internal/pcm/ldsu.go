package pcm

import (
	"trident/internal/device"
	"trident/internal/units"
)

// LDSU is the Linear Derivative Storage Unit of Fig. 2d: an analog voltage
// comparator followed by a D-flip-flop. During the forward pass the
// comparator tests each pre-activation h against the activation threshold
// and the flip-flop latches the one-bit result; during the backward pass the
// stored bit programs the TIA gain to f'(h) — 0.34 above threshold, 0 below
// — so the Hadamard product of equation (3) happens without any memory
// fetch.
type LDSU struct {
	latched bool
	valid   bool
	energy  units.Energy
}

// NewLDSU returns an LDSU with no latched value.
func NewLDSU() *LDSU { return &LDSU{} }

// Latch runs the comparator on a normalized pre-activation h (threshold at
// h = 1, matching ActivationCell.ApplyNormalized) and stores the result in
// the flip-flop. Each latch event costs the LDSU power over one clock cycle.
func (l *LDSU) Latch(h float64) {
	l.latched = h >= 1
	l.valid = true
	l.energy += device.PowerLDSU.OverTime(device.ClockRate.Period())
}

// Valid reports whether a derivative has been latched since the last Clear.
func (l *LDSU) Valid() bool { return l.valid }

// Bit returns the raw flip-flop state.
func (l *LDSU) Bit() bool { return l.latched }

// Derivative returns the stored f'(h): ActivationDerivativeHigh when the
// forward pass exceeded the threshold, ActivationDerivativeLow otherwise.
// Reading an unlatched LDSU returns the low derivative — the hardware
// power-on state — so a backward pass without a forward pass produces zero
// gradient rather than garbage.
func (l *LDSU) Derivative() float64 {
	if l.latched {
		return device.ActivationDerivativeHigh
	}
	return device.ActivationDerivativeLow
}

// Clear resets the flip-flop between training samples.
func (l *LDSU) Clear() {
	l.latched = false
	l.valid = false
}

// EnergyConsumed returns the cumulative latch energy.
func (l *LDSU) EnergyConsumed() units.Energy { return l.energy }

// LDSUBank is the row of LDSUs in one PE: one per output row, latched in
// parallel with the optical activation.
type LDSUBank struct {
	units []LDSU
}

// NewLDSUBank returns a bank of n LDSUs.
func NewLDSUBank(n int) *LDSUBank { return &LDSUBank{units: make([]LDSU, n)} }

// Len returns the number of LDSUs in the bank.
func (b *LDSUBank) Len() int { return len(b.units) }

// Latch stores the comparator results for a vector of pre-activations.
// Extra LDSUs beyond len(h) are cleared.
func (b *LDSUBank) Latch(h []float64) {
	for i := range b.units {
		if i < len(h) {
			b.units[i].Latch(h[i])
		} else {
			b.units[i].Clear()
		}
	}
}

// Derivatives writes the stored f'(h) vector into dst and returns it,
// allocating if dst is nil or too short.
func (b *LDSUBank) Derivatives(dst []float64) []float64 {
	if cap(dst) < len(b.units) {
		dst = make([]float64, len(b.units))
	}
	dst = dst[:len(b.units)]
	for i := range b.units {
		dst[i] = b.units[i].Derivative()
	}
	return dst
}

// Clear resets every LDSU in the bank.
func (b *LDSUBank) Clear() {
	for i := range b.units {
		b.units[i].Clear()
	}
}

// EnergyConsumed returns the total latch energy across the bank.
func (b *LDSUBank) EnergyConsumed() units.Energy {
	var e units.Energy
	for i := range b.units {
		e += b.units[i].EnergyConsumed()
	}
	return e
}
