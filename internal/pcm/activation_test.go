package pcm

import (
	"math"
	"testing"
	"testing/quick"

	"trident/internal/device"
	"trident/internal/units"
)

func TestActivationDefaults(t *testing.T) {
	a, err := NewActivationCell(ActivationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Threshold() != device.ActivationThresholdEnergy {
		t.Errorf("threshold = %v, want %v", a.Threshold(), device.ActivationThresholdEnergy)
	}
}

func TestActivationValidation(t *testing.T) {
	bad := []ActivationConfig{
		{Threshold: -1 * units.Picojoule},
		{Slope: -0.1},
		{MaxOutput: -1},
	}
	for i, cfg := range bad {
		if _, err := NewActivationCell(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

// TestFigure3Shape checks the published transfer function: dead below the
// 430 pJ threshold, slope 0.34 above it.
func TestFigure3Shape(t *testing.T) {
	a, _ := NewActivationCell(ActivationConfig{})
	if got := a.Apply(200 * units.Picojoule); got != 0 {
		t.Errorf("below-threshold output = %v, want 0", got)
	}
	if got := a.Apply(429 * units.Picojoule); got != 0 {
		t.Errorf("just-below-threshold output = %v, want 0", got)
	}
	// At exactly 2× threshold, output = slope × (2−1) = 0.34.
	if got := a.Apply(2 * device.ActivationThresholdEnergy); math.Abs(got-0.34) > 1e-12 {
		t.Errorf("output at 2×threshold = %v, want 0.34", got)
	}
	// Saturation.
	if got := a.Apply(100 * device.ActivationThresholdEnergy); got != 1.0 {
		t.Errorf("saturated output = %v, want 1.0", got)
	}
	if got := a.Apply(units.Energy(math.NaN())); got != 0 {
		t.Errorf("NaN pulse output = %v, want 0", got)
	}
}

func TestActivationDerivativeTwoValued(t *testing.T) {
	a, _ := NewActivationCell(ActivationConfig{})
	if got := a.Derivative(0.5); got != device.ActivationDerivativeLow {
		t.Errorf("f'(0.5) = %v, want 0", got)
	}
	if got := a.Derivative(1.5); got != device.ActivationDerivativeHigh {
		t.Errorf("f'(1.5) = %v, want 0.34", got)
	}
	if got := a.Derivative(math.NaN()); got != 0 {
		t.Errorf("f'(NaN) = %v, want 0", got)
	}
	// Deep in saturation the derivative vanishes.
	if got := a.Derivative(100); got != 0 {
		t.Errorf("f' in saturation = %v, want 0", got)
	}
}

// Property: ApplyNormalized agrees with Apply at the corresponding pulse
// energy, and the derivative matches a finite difference away from the kink.
func TestQuickActivationConsistent(t *testing.T) {
	a, _ := NewActivationCell(ActivationConfig{})
	f := func(raw float64) bool {
		h := math.Mod(math.Abs(raw), 4)
		fromPulse := a.Apply(units.Energy(h) * a.Threshold())
		fromNorm := a.ApplyNormalized(h)
		return math.Abs(fromPulse-fromNorm) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for _, h := range []float64{0.3, 0.7, 1.2, 1.8, 2.5} {
		fd := (a.ApplyNormalized(h+eps) - a.ApplyNormalized(h-eps)) / (2 * eps)
		if math.Abs(fd-a.Derivative(h)) > 1e-4 {
			t.Errorf("finite-difference f'(%v) = %v, Derivative = %v", h, fd, a.Derivative(h))
		}
	}
}

func TestActivationResetAccounting(t *testing.T) {
	a, _ := NewActivationCell(ActivationConfig{})
	// Reset before any firing is free.
	if e := a.Reset(); e != 0 {
		t.Errorf("reset of unfired cell = %v, want 0", e)
	}
	a.Apply(2 * device.ActivationThresholdEnergy)
	if a.Fires() != 1 {
		t.Fatalf("fires = %d, want 1", a.Fires())
	}
	e := a.Reset()
	if e <= 0 {
		t.Errorf("reset energy = %v, want positive", e)
	}
	if a.Resets() != 1 {
		t.Errorf("resets = %d, want 1", a.Resets())
	}
	// Double reset does nothing.
	if e2 := a.Reset(); e2 != 0 {
		t.Errorf("second reset = %v, want 0", e2)
	}
	// Below-threshold events do not fire and need no reset.
	a.Apply(100 * units.Picojoule)
	if a.Fires() != 1 {
		t.Errorf("below-threshold pulse fired the cell")
	}
	if a.EnergyConsumed() != e {
		t.Errorf("energy = %v, want %v", a.EnergyConsumed(), e)
	}
}

func TestActivationEndurance(t *testing.T) {
	a, _ := NewActivationCell(ActivationConfig{})
	if a.RemainingEndurance() != 1 {
		t.Errorf("fresh endurance = %v, want 1", a.RemainingEndurance())
	}
	a.Apply(2 * device.ActivationThresholdEnergy)
	a.Reset()
	if got := a.RemainingEndurance(); got >= 1 || got <= 0 {
		t.Errorf("endurance after one cycle = %v, want in (0,1)", got)
	}
}

func TestActivationCurve(t *testing.T) {
	a, _ := NewActivationCell(ActivationConfig{})
	xs, ys := a.Curve(101, 4)
	if len(xs) != 101 || len(ys) != 101 {
		t.Fatalf("curve lengths %d/%d, want 101", len(xs), len(ys))
	}
	if xs[0] != 0 || math.Abs(xs[100]-4) > 1e-12 {
		t.Errorf("x range [%v,%v], want [0,4]", xs[0], xs[100])
	}
	// Curve must be flat zero below threshold, non-decreasing overall, and
	// must not consume endurance.
	for i, x := range xs {
		if x < 1 && ys[i] != 0 {
			t.Errorf("curve(%v) = %v below threshold, want 0", x, ys[i])
		}
		if i > 0 && ys[i] < ys[i-1] {
			t.Errorf("curve decreasing at %v", x)
		}
	}
	if a.Fires() != 0 {
		t.Error("Curve must not consume endurance")
	}
	// Degenerate n is clamped.
	xs, _ = a.Curve(1, 4)
	if len(xs) != 2 {
		t.Errorf("Curve(1) length = %d, want clamp to 2", len(xs))
	}
}

func TestLDSULatchAndDerivative(t *testing.T) {
	l := NewLDSU()
	if l.Valid() {
		t.Error("fresh LDSU must not be valid")
	}
	if got := l.Derivative(); got != device.ActivationDerivativeLow {
		t.Errorf("unlatched derivative = %v, want low", got)
	}
	l.Latch(1.5)
	if !l.Valid() || !l.Bit() {
		t.Error("latch above threshold: want valid high bit")
	}
	if got := l.Derivative(); got != device.ActivationDerivativeHigh {
		t.Errorf("derivative = %v, want 0.34", got)
	}
	l.Latch(0.5)
	if l.Bit() {
		t.Error("latch below threshold: want low bit")
	}
	if l.EnergyConsumed() <= 0 {
		t.Error("latching must consume energy")
	}
	l.Clear()
	if l.Valid() || l.Bit() {
		t.Error("Clear must reset state")
	}
}

func TestLDSUBank(t *testing.T) {
	b := NewLDSUBank(4)
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	b.Latch([]float64{2, 0.5, 1.0, 3}) // h≥1 latches high
	d := b.Derivatives(nil)
	want := []float64{0.34, 0, 0.34, 0.34}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("derivative[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	// Short latch vector clears the tail.
	b.Latch([]float64{2})
	d = b.Derivatives(d)
	if d[0] != 0.34 || d[1] != 0 || d[3] != 0 {
		t.Errorf("partial latch derivatives = %v", d)
	}
	if b.EnergyConsumed() <= 0 {
		t.Error("bank energy must accumulate")
	}
	b.Clear()
	d = b.Derivatives(d)
	for i, v := range d {
		if v != 0 {
			t.Errorf("cleared derivative[%d] = %v, want 0", i, v)
		}
	}
}

// Property: the LDSU agrees with the activation cell's derivative for all
// unsaturated pre-activations — the bit it stores is exactly the information
// the backward pass needs.
func TestQuickLDSUMatchesActivation(t *testing.T) {
	a, _ := NewActivationCell(ActivationConfig{MaxOutput: 1e12}) // no saturation
	l := NewLDSU()
	f := func(raw float64) bool {
		h := math.Mod(math.Abs(raw), 10)
		l.Latch(h)
		return l.Derivative() == a.Derivative(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
