package pcm

import (
	"fmt"
	"math"

	"trident/internal/device"
	"trident/internal/units"
)

// This file models the long-term behaviour of GST cells: amorphous-phase
// drift, retention, and endurance-limited lifetime — the properties behind
// the paper's "non-volatile for up to 10 years" and "a trillion switching
// cycles" claims, and the knobs an operator of a real Trident part would
// need to reason about.

// DriftNu is the amorphous-phase drift exponent: the optical contrast of a
// partially amorphous state evolves as (t/t0)^(-ν) through structural
// relaxation. Electrical resistance drift in GST is strong (ν ≈ 0.01–0.1)
// because conduction runs through percolation paths, but *optical* readout
// probes the bulk refractive index and drifts orders of magnitude less —
// the photonic-memory demonstrations the paper cites report multi-year
// state stability, which is what the 10-year retention claim rests on.
// ν = 5e-5 reproduces that: worst-case drift stays within half an 8-bit
// level over a decade (asserted in the tests).
const DriftNu = 5e-5

// driftReference is t0 in the drift law, the conventional 1 s normalization.
const driftReference = 1.0 // seconds

// TransmissionAfter returns the cell's transmission after holding state for
// the given duration, applying the drift law to the amorphous fraction.
// Fully crystalline cells (level 0) do not drift — crystalline GST is the
// equilibrium phase. Durations below the reference time return the
// undrifted transmission.
func (c *Cell) TransmissionAfter(hold units.Duration) float64 {
	t := c.Transmission()
	if hold.Seconds() <= driftReference {
		return t
	}
	amorphous := 1 - c.CrystallineFraction()
	if amorphous <= 0 {
		return t
	}
	// Drift relaxes the amorphous fraction toward crystalline order,
	// shrinking transmission multiplicatively.
	factor := math.Pow(hold.Seconds()/driftReference, -DriftNu*amorphous)
	lo, _ := c.TransmissionRange()
	drifted := t * factor
	if drifted < lo {
		return lo
	}
	return drifted
}

// DriftLevelError returns how many 8-bit levels of weight error drift
// introduces after the hold duration — the quantity that decides when a
// deployed Trident part must refresh its weights.
func (c *Cell) DriftLevelError(hold units.Duration) float64 {
	now := c.Transmission()
	then := c.TransmissionAfter(hold)
	lo, hi := c.TransmissionRange()
	if hi == lo {
		return 0
	}
	perLevel := (hi - lo) / float64(c.levels-1)
	return math.Abs(now-then) / perLevel
}

// RetentionOK reports whether the cell still reads within half a level of
// its programmed state after the hold duration. The paper's 10-year claim
// corresponds to RetentionOK(device.GSTRetention) for mid-range states.
func (c *Cell) RetentionOK(hold units.Duration) bool {
	return c.DriftLevelError(hold) <= 0.5
}

// LifetimeEstimate projects how long a cell survives a given write rate
// before exhausting its switching endurance.
type LifetimeEstimate struct {
	WritesPerSecond float64
	Lifetime        units.Duration
	// TrainingSamples is the number of in-situ training samples the cell
	// survives (three bank rewrites per mini-batch step, per
	// internal/train's model).
	TrainingSamples float64
}

// EstimateLifetime returns the endurance-limited lifetime at a sustained
// write rate.
func EstimateLifetime(writesPerSecond float64) (LifetimeEstimate, error) {
	if writesPerSecond <= 0 || math.IsNaN(writesPerSecond) || math.IsInf(writesPerSecond, 0) {
		return LifetimeEstimate{}, fmt.Errorf("pcm: write rate %v must be positive and finite", writesPerSecond)
	}
	seconds := device.GSTEnduranceCycles / writesPerSecond
	const rewritesPerSample = 3.0 / 8.0 // 3 layouts per mini-batch of 8
	return LifetimeEstimate{
		WritesPerSecond: writesPerSecond,
		Lifetime:        units.Duration(seconds),
		TrainingSamples: device.GSTEnduranceCycles / rewritesPerSample,
	}, nil
}
