// Package models describes the CNN workloads of the paper's evaluation —
// AlexNet, VGG-16, GoogleNet (Inception v1), ResNet-50 and MobileNetV2 —
// layer by layer, with exact parameter and multiply-accumulate counts.
//
// The descriptors are consumed by the dataflow cost model: energy and
// latency of an accelerator depend only on layer geometry (channel counts,
// spatial sizes, kernel shapes), not on trained weight values, so the
// descriptors carry no weights. All models take 224×224×3 inputs and emit
// 1000 classes, matching Section IV.
package models

import (
	"fmt"

	"trident/internal/tensor"
)

// LayerKind classifies a layer for cost accounting.
type LayerKind int

// Layer kinds.
const (
	KindConv LayerKind = iota
	KindDense
	KindMaxPool
	KindAvgPool
	KindActivation
	KindConcat // inception branch join; free in hardware, kept for structure
)

// String returns the kind name.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindDense:
		return "dense"
	case KindMaxPool:
		return "maxpool"
	case KindAvgPool:
		return "avgpool"
	case KindActivation:
		return "activation"
	case KindConcat:
		return "concat"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// LayerSpec is one layer of a workload.
type LayerSpec struct {
	Name string
	Kind LayerKind
	// Conv is set for KindConv layers.
	Conv tensor.Conv2DSpec
	// InFeatures/OutFeatures are set for KindDense layers.
	InFeatures, OutFeatures int
	// Pool geometry for KindMaxPool/KindAvgPool layers. Global marks a
	// global average pool (window = whole feature map).
	PoolK, PoolStride int
	PoolCeil          bool
	Global            bool
	// MACs is the multiply-accumulate count of one forward pass.
	MACs int64
	// Weights is the parameter count (kernel/matrix plus bias).
	Weights int64
	// Activations is the element count of this layer's output — the data
	// volume that moves to the next layer (or through an ADC, for
	// baseline accelerators).
	Activations int64
}

// Model is a full workload.
type Model struct {
	Name   string
	Layers []LayerSpec
	// Sequential marks models whose layer list is a straight chain
	// (AlexNet, VGG-16); branched models (inception, residual) flatten
	// their branches for cost accounting and cannot be replayed as a
	// chain.
	Sequential bool
}

// TotalMACs returns the MAC count of one inference.
func (m *Model) TotalMACs() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.MACs
	}
	return s
}

// TotalWeights returns the parameter count.
func (m *Model) TotalWeights() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.Weights
	}
	return s
}

// TotalActivations returns the summed activation volume across layers —
// the inter-layer traffic of one inference.
func (m *Model) TotalActivations() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.Activations
	}
	return s
}

// ComputeLayers returns only the MAC-bearing layers (conv and dense).
func (m *Model) ComputeLayers() []LayerSpec {
	var out []LayerSpec
	for _, l := range m.Layers {
		if l.Kind == KindConv || l.Kind == KindDense {
			out = append(out, l)
		}
	}
	return out
}

// builder tracks the running CHW shape while assembling a model.
type builder struct {
	m       *Model
	c, h, w int
}

func newBuilder(name string, c, h, w int) *builder {
	return &builder{m: &Model{Name: name}, c: c, h: h, w: w}
}

// conv appends a convolution (with bias) followed by an implicit update of
// the running shape. Returns the builder for chaining.
func (b *builder) conv(name string, outC, k, stride, pad int) *builder {
	return b.convHW(name, outC, k, k, stride, pad, 1)
}

// convHW appends a general (possibly grouped) convolution.
func (b *builder) convHW(name string, outC, kh, kw, stride, pad, groups int) *builder {
	spec := tensor.Conv2DSpec{
		InC: b.c, InH: b.h, InW: b.w,
		OutC: outC, KH: kh, KW: kw,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad, Groups: groups,
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("models: %s/%s: %v", b.m.Name, name, err))
	}
	acts := int64(outC) * int64(spec.OutH()) * int64(spec.OutW())
	b.m.Layers = append(b.m.Layers, LayerSpec{
		Name:        name,
		Kind:        KindConv,
		Conv:        spec,
		MACs:        spec.MACs(),
		Weights:     spec.WeightCount() + int64(outC), // + bias
		Activations: acts,
	})
	b.c, b.h, b.w = outC, spec.OutH(), spec.OutW()
	return b
}

// dwconv appends a depthwise convolution (groups = channels).
func (b *builder) dwconv(name string, k, stride, pad int) *builder {
	return b.convHW(name, b.c, k, k, stride, pad, b.c)
}

// relu appends an activation layer over the current shape.
func (b *builder) relu(name string) *builder {
	acts := int64(b.c) * int64(b.h) * int64(b.w)
	b.m.Layers = append(b.m.Layers, LayerSpec{
		Name: name, Kind: KindActivation, Activations: acts,
	})
	return b
}

// maxpool appends max pooling. ceil selects ceiling-mode shape arithmetic
// (GoogleNet uses it).
func (b *builder) maxpool(name string, k, stride int, ceil bool) *builder {
	return b.pool(name, KindMaxPool, k, stride, ceil)
}

// avgpool appends average pooling.
func (b *builder) avgpool(name string, k, stride int) *builder {
	return b.pool(name, KindAvgPool, k, stride, false)
}

func (b *builder) pool(name string, kind LayerKind, k, stride int, ceil bool) *builder {
	outH := (b.h-k)/stride + 1
	outW := (b.w-k)/stride + 1
	if ceil { // ceiling-mode pooling: round the stride division up
		outH = (b.h-k+stride-1)/stride + 1
		outW = (b.w-k+stride-1)/stride + 1
	}
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("models: %s/%s pool collapses (%dx%d k=%d s=%d)", b.m.Name, name, b.h, b.w, k, stride))
	}
	acts := int64(b.c) * int64(outH) * int64(outW)
	b.m.Layers = append(b.m.Layers, LayerSpec{
		Name: name, Kind: kind, Activations: acts,
		PoolK: k, PoolStride: stride, PoolCeil: ceil,
	})
	b.h, b.w = outH, outW
	return b
}

// globalAvgPool reduces the spatial dims to 1×1.
func (b *builder) globalAvgPool(name string) *builder {
	b.m.Layers = append(b.m.Layers, LayerSpec{
		Name: name, Kind: KindAvgPool, Activations: int64(b.c), Global: true,
	})
	b.h, b.w = 1, 1
	return b
}

// dense appends a fully connected layer (with bias) on the flattened shape.
func (b *builder) dense(name string, out int) *builder {
	in := b.c * b.h * b.w
	b.m.Layers = append(b.m.Layers, LayerSpec{
		Name: name, Kind: KindDense,
		InFeatures: in, OutFeatures: out,
		MACs:        int64(in) * int64(out),
		Weights:     int64(in)*int64(out) + int64(out),
		Activations: int64(out),
	})
	b.c, b.h, b.w = out, 1, 1
	return b
}

// concat records an inception join producing outC channels at the current
// spatial size.
func (b *builder) concat(name string, outC int) *builder {
	b.c = outC
	b.m.Layers = append(b.m.Layers, LayerSpec{
		Name: name, Kind: KindConcat,
		Activations: int64(outC) * int64(b.h) * int64(b.w),
	})
	return b
}
