package models

import (
	"trident/internal/core"
	"trident/internal/tensor"
)

// Hardware counterparts of the branched miniatures: the same structural
// ideas as MiniInception/MiniResNet — parallel branches, residual
// shortcut, channel merge — expressed on the hardware-functional execution
// graph, so they train in-situ through the PCM banks, GST activations and
// LDSU backward passes instead of the digital reference.

// HardwareMiniBranched builds a residual-plus-concat miniature on c×hw×hw
// inputs, entirely on Trident hardware:
//
//	input → stem conv → body conv → add(body, stem) → concat(add, stem) → GAP → dense
//
// Both convolutions carry the GST photonic activation; the residual join
// models optical summation and the concat models the wavelength merge. The
// classifier head runs linear, like the sequential drivers.
func HardwareMiniBranched(cfg core.NetworkConfig, c, hw, classes int) (*core.Graph, error) {
	const width = 8
	g, err := core.NewGraph(cfg, c, hw, hw)
	if err != nil {
		return nil, err
	}
	in := g.Input()
	stem := g.Conv(in, tensor.Conv2DSpec{
		InC: c, InH: hw, InW: hw, OutC: width, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
	}, 501)
	body := g.Conv(stem, tensor.Conv2DSpec{
		InC: width, InH: hw, InW: hw, OutC: width, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
	}, 502)
	res := g.Add(body, stem)
	cat := g.Concat(res, stem) // 2·width channels
	gap := g.GlobalAvgPool(cat)
	out := g.Dense(gap, core.LayerSpec{In: 2 * width, Out: classes}, 503)
	if err := g.SetOutput(out); err != nil {
		return nil, err
	}
	return g, nil
}
