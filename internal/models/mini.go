package models

import (
	"trident/internal/nn"
	"trident/internal/tensor"
)

// Runnable miniatures of the branched evaluation architectures. The full
// GoogleNet/ResNet-50 descriptors serve the cost models; these graph
// networks carry the same *structural* ideas — inception's parallel
// branches with channel concatenation, ResNet's residual shortcut — at a
// scale the functional tests and examples can train in seconds.

// MiniInception builds a one-module inception classifier on c×hw×hw inputs:
//
//	input → [1×1 | 1×1→3×3 | pool→1×1] → concat → GAP → dense
func MiniInception(c, hw, classes int, seed int64) *nn.Graph {
	g := nn.NewGraph()
	in := g.Input()
	// Branch 1: 1×1 conv.
	b1 := g.Layer(nn.NewConv2D("b1/1x1", tensor.Conv2DSpec{
		InC: c, InH: hw, InW: hw, OutC: 4, KH: 1, KW: 1,
		StrideH: 1, StrideW: 1, Groups: 1,
	}, seed), in)
	b1 = g.Layer(nn.NewReLU("b1/relu"), b1)
	// Branch 2: 1×1 reduce then 3×3.
	b2 := g.Layer(nn.NewConv2D("b2/reduce", tensor.Conv2DSpec{
		InC: c, InH: hw, InW: hw, OutC: 3, KH: 1, KW: 1,
		StrideH: 1, StrideW: 1, Groups: 1,
	}, seed+1), in)
	b2 = g.Layer(nn.NewReLU("b2/relu1"), b2)
	b2 = g.Layer(nn.NewConv2D("b2/3x3", tensor.Conv2DSpec{
		InC: 3, InH: hw, InW: hw, OutC: 6, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
	}, seed+2), b2)
	b2 = g.Layer(nn.NewReLU("b2/relu2"), b2)
	// Branch 3: 3×3 conv as the pooled-projection stand-in (keeps shape).
	b3 := g.Layer(nn.NewConv2D("b3/proj", tensor.Conv2DSpec{
		InC: c, InH: hw, InW: hw, OutC: 2, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
	}, seed+3), in)
	b3 = g.Layer(nn.NewReLU("b3/relu"), b3)
	cat := g.Concat(b1, b2, b3) // 4+6+2 = 12 channels
	gap := g.Layer(nn.NewAvgPool("gap", tensor.PoolSpec{C: 12, H: hw, W: hw, K: hw, Stride: hw}), cat)
	fl := g.Layer(nn.NewFlatten("flatten"), gap)
	out := g.Layer(nn.NewDense("fc", 12, classes, seed+4), fl)
	g.SetOutput(out)
	return g
}

// MiniResNet builds a two-block residual classifier on c×hw×hw inputs:
//
//	input → conv → [conv→relu→conv + shortcut] → relu → GAP → dense
func MiniResNet(c, hw, classes int, seed int64) *nn.Graph {
	const width = 8
	g := nn.NewGraph()
	in := g.Input()
	stem := g.Layer(nn.NewConv2D("stem", tensor.Conv2DSpec{
		InC: c, InH: hw, InW: hw, OutC: width, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
	}, seed), in)
	stem = g.Layer(nn.NewReLU("stem/relu"), stem)
	// Residual block: two 3×3 convs plus the identity shortcut.
	b := g.Layer(nn.NewConv2D("res/conv1", tensor.Conv2DSpec{
		InC: width, InH: hw, InW: hw, OutC: width, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
	}, seed+1), stem)
	b = g.Layer(nn.NewReLU("res/relu1"), b)
	b = g.Layer(nn.NewConv2D("res/conv2", tensor.Conv2DSpec{
		InC: width, InH: hw, InW: hw, OutC: width, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
	}, seed+2), b)
	join := g.Add(b, stem)
	act := g.Layer(nn.NewReLU("res/relu2"), join)
	gap := g.Layer(nn.NewAvgPool("gap", tensor.PoolSpec{C: width, H: hw, W: hw, K: hw, Stride: hw}), act)
	fl := g.Layer(nn.NewFlatten("flatten"), gap)
	out := g.Layer(nn.NewDense("fc", width, classes, seed+3), fl)
	g.SetOutput(out)
	return g
}
