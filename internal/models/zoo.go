package models

// This file assembles the five evaluation workloads. Channel counts and
// shapes follow the canonical torchvision definitions; parameter totals are
// asserted against the published figures in zoo_test.go.

// AlexNet returns the torchvision AlexNet: 5 conv + 3 FC, ≈61.1 M
// parameters, ≈0.71 GMAC.
func AlexNet() *Model {
	b := newBuilder("AlexNet", 3, 224, 224)
	b.m.Sequential = true
	b.conv("conv1", 64, 11, 4, 2).relu("relu1").maxpool("pool1", 3, 2, false)
	b.conv("conv2", 192, 5, 1, 2).relu("relu2").maxpool("pool2", 3, 2, false)
	b.conv("conv3", 384, 3, 1, 1).relu("relu3")
	b.conv("conv4", 256, 3, 1, 1).relu("relu4")
	b.conv("conv5", 256, 3, 1, 1).relu("relu5").maxpool("pool5", 3, 2, false)
	b.dense("fc6", 4096).relu("relu6")
	b.dense("fc7", 4096).relu("relu7")
	b.dense("fc8", 1000)
	return b.m
}

// VGG16 returns VGG-16: 13 conv + 3 FC, ≈138.4 M parameters, ≈15.5 GMAC —
// the paper's largest workload ("138 million for VGG-16").
func VGG16() *Model {
	b := newBuilder("VGG-16", 3, 224, 224)
	b.m.Sequential = true
	block := func(n int, c int, idx int) {
		for i := 0; i < n; i++ {
			name := fmtName("conv", idx, i+1)
			b.conv(name, c, 3, 1, 1).relu("relu_" + name)
		}
		b.maxpool(fmtName("pool", idx, 0), 2, 2, false)
	}
	block(2, 64, 1)
	block(2, 128, 2)
	block(3, 256, 3)
	block(3, 512, 4)
	block(3, 512, 5)
	b.dense("fc6", 4096).relu("relu6")
	b.dense("fc7", 4096).relu("relu7")
	b.dense("fc8", 1000)
	return b.m
}

func fmtName(prefix string, block, idx int) string {
	if idx == 0 {
		return prefix + string(rune('0'+block))
	}
	return prefix + string(rune('0'+block)) + "_" + string(rune('0'+idx))
}

// inception appends one Inception-v1 module: four parallel branches
// (1×1; 1×1→3×3; 1×1→5×5; 3×3 maxpool→1×1) concatenated channel-wise.
func inception(b *builder, name string, c1, r3, c3, r5, c5, pp int) {
	inC, h, w := b.c, b.h, b.w
	// Branch 1: 1×1.
	b.c, b.h, b.w = inC, h, w
	b.conv(name+"/1x1", c1, 1, 1, 0).relu(name + "/relu_1x1")
	// Branch 2: 1×1 reduce then 3×3.
	b.c, b.h, b.w = inC, h, w
	b.conv(name+"/3x3_reduce", r3, 1, 1, 0).relu(name + "/relu_3x3r")
	b.conv(name+"/3x3", c3, 3, 1, 1).relu(name + "/relu_3x3")
	// Branch 3: 1×1 reduce then 5×5.
	b.c, b.h, b.w = inC, h, w
	b.conv(name+"/5x5_reduce", r5, 1, 1, 0).relu(name + "/relu_5x5r")
	b.conv(name+"/5x5", c5, 5, 1, 2).relu(name + "/relu_5x5")
	// Branch 4: 3×3 maxpool (stride 1, pad 1 keeps shape) then 1×1 proj.
	b.c, b.h, b.w = inC, h, w
	b.m.Layers = append(b.m.Layers, LayerSpec{
		Name: name + "/pool", Kind: KindMaxPool,
		Activations: int64(inC) * int64(h) * int64(w),
	})
	b.conv(name+"/pool_proj", pp, 1, 1, 0).relu(name + "/relu_pp")
	// Concatenate.
	b.h, b.w = h, w
	b.concat(name+"/concat", c1+c3+c5+pp)
}

// GoogleNet returns Inception v1 (no auxiliary heads): ≈7.0 M parameters,
// ≈1.6 GMAC. The paper's prose quotes "4 million" parameters, the figure
// the original GoogLeNet paper gives for its conv trunk; the full model
// with its classifier is ≈7 M, which is what we count.
func GoogleNet() *Model {
	b := newBuilder("GoogleNet", 3, 224, 224)
	b.conv("conv1", 64, 7, 2, 3).relu("relu1").maxpool("pool1", 3, 2, true)
	b.conv("conv2_reduce", 64, 1, 1, 0).relu("relu2r")
	b.conv("conv2", 192, 3, 1, 1).relu("relu2").maxpool("pool2", 3, 2, true)
	inception(b, "3a", 64, 96, 128, 16, 32, 32)
	inception(b, "3b", 128, 128, 192, 32, 96, 64)
	b.maxpool("pool3", 3, 2, true)
	inception(b, "4a", 192, 96, 208, 16, 48, 64)
	inception(b, "4b", 160, 112, 224, 24, 64, 64)
	inception(b, "4c", 128, 128, 256, 24, 64, 64)
	inception(b, "4d", 112, 144, 288, 32, 64, 64)
	inception(b, "4e", 256, 160, 320, 32, 128, 128)
	b.maxpool("pool4", 3, 2, true)
	inception(b, "5a", 256, 160, 320, 32, 128, 128)
	inception(b, "5b", 384, 192, 384, 48, 128, 128)
	b.globalAvgPool("gap")
	b.dense("fc", 1000)
	return b.m
}

// bottleneck appends one ResNet-50 bottleneck block (1×1 reduce, 3×3, 1×1
// expand, plus a projection shortcut when the shape changes). BatchNorm
// parameters (2 per channel) are folded into each conv's weight count so
// the total matches the published 25.6 M.
func bottleneck(b *builder, name string, mid, out, stride int) {
	inC, h, w := b.c, b.h, b.w
	addBN := func(c int) {
		last := &b.m.Layers[len(b.m.Layers)-1]
		last.Weights += 2 * int64(c) // γ and β
	}
	// Bottleneck convs carry no bias (BN provides the shift); remove the
	// builder's default bias and add BN instead.
	noBias := func(c int) {
		last := &b.m.Layers[len(b.m.Layers)-1]
		last.Weights -= int64(c)
		addBN(c)
	}
	b.conv(name+"/conv1", mid, 1, 1, 0)
	noBias(mid)
	b.relu(name + "/relu1")
	b.conv(name+"/conv2", mid, 3, stride, 1)
	noBias(mid)
	b.relu(name + "/relu2")
	b.conv(name+"/conv3", out, 1, 1, 0)
	noBias(out)
	if inC != out || stride != 1 {
		// Projection shortcut: computed on the block input shape.
		oh, ow := b.h, b.w
		b.c, b.h, b.w = inC, h, w
		b.conv(name+"/downsample", out, 1, stride, 0)
		noBias(out)
		b.h, b.w = oh, ow
	}
	b.relu(name + "/relu3")
}

// ResNet50 returns ResNet-50: ≈25.6 M parameters, ≈4.1 GMAC.
func ResNet50() *Model {
	b := newBuilder("ResNet-50", 3, 224, 224)
	b.conv("conv1", 64, 7, 2, 3)
	last := &b.m.Layers[0]
	last.Weights += 2*64 - 64 // BN instead of bias
	b.relu("relu1").maxpool("pool1", 3, 2, false)
	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			name := fmtName("res", si+2, bi+1)
			bottleneck(b, name, st.mid, st.out, stride)
		}
	}
	b.globalAvgPool("gap")
	b.dense("fc", 1000)
	return b.m
}

// invertedResidual appends one MobileNetV2 block: 1×1 expand (ratio t),
// 3×3 depthwise, 1×1 project. BN parameters are folded in like ResNet.
func invertedResidual(b *builder, name string, t, out, stride int) {
	inC := b.c
	noBias := func(c int) {
		last := &b.m.Layers[len(b.m.Layers)-1]
		last.Weights += 2*int64(c) - int64(c)
	}
	mid := inC * t
	if t != 1 {
		b.conv(name+"/expand", mid, 1, 1, 0)
		noBias(mid)
		b.relu(name + "/relu_e")
	}
	b.dwconv(name+"/dw", 3, stride, 1)
	noBias(mid)
	b.relu(name + "/relu_dw")
	b.conv(name+"/project", out, 1, 1, 0)
	noBias(out)
}

// MobileNetV2 returns MobileNetV2 (width 1.0): ≈3.5 M parameters,
// ≈0.31 GMAC — the paper's smallest workload.
func MobileNetV2() *Model {
	b := newBuilder("MobileNetV2", 3, 224, 224)
	b.conv("conv1", 32, 3, 2, 1)
	first := &b.m.Layers[0]
	first.Weights += 2*32 - 32
	b.relu("relu1")
	cfg := []struct {
		t, c, n, s int
	}{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blk := 0
	for _, c := range cfg {
		for i := 0; i < c.n; i++ {
			stride := 1
			if i == 0 {
				stride = c.s
			}
			blk++
			invertedResidual(b, fmtName("ir", blk/10, blk%10), c.t, c.c, stride)
		}
	}
	b.conv("conv_last", 1280, 1, 1, 0)
	lastc := &b.m.Layers[len(b.m.Layers)-1]
	lastc.Weights += 2*1280 - 1280
	b.relu("relu_last")
	b.globalAvgPool("gap")
	b.dense("fc", 1000)
	return b.m
}

// All returns the five evaluation workloads in the order the paper's
// figures plot them.
func All() []*Model {
	return []*Model{GoogleNet(), MobileNetV2(), VGG16(), AlexNet(), ResNet50()}
}

// ByName returns the named model or nil.
func ByName(name string) *Model {
	for _, m := range All() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
