package models

import (
	"testing"

	"trident/internal/nn"
	"trident/internal/tensor"
)

func TestInstantiateValidation(t *testing.T) {
	if _, err := Instantiate(GoogleNet(), 64, 10, false, 1); err == nil {
		t.Error("branched model: want error")
	}
	if _, err := Instantiate(ResNet50(), 64, 10, false, 1); err == nil {
		t.Error("ResNet-50 (branched): want error")
	}
	if _, err := Instantiate(AlexNet(), 8, 10, false, 1); err == nil {
		t.Error("tiny input: want error")
	}
	if _, err := Instantiate(VGG16(), 64, 1, false, 1); err == nil {
		t.Error("single class: want error")
	}
}

// TestInstantiateVGGAt32 builds a runnable VGG-16 at 32×32 (the CIFAR
// geometry) and checks the forward shape and trainability.
func TestInstantiateVGGAt32(t *testing.T) {
	net, err := Instantiate(VGG16(), 32, 10, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 32, 32)
	for i := range x.Data() {
		x.Data()[i] = 0.01 * float64(i%17)
	}
	out := net.Forward(x)
	if out.Len() != 10 {
		t.Fatalf("output = %d classes, want 10", out.Len())
	}
	// 32 → five pools of stride 2 → 1×1×512 into fc6.
	for _, l := range net.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			if d.Name() == "fc6" && d.W.Value.Dim(1) != 512 {
				t.Errorf("fc6 fan-in = %d, want 512 at 32×32", d.W.Value.Dim(1))
			}
			break
		}
	}
	// A training step must run and reduce loss on a repeated sample.
	first := nn.TrainStep(net, nn.SGD{LearningRate: 0.01}, x, 3)
	last := nn.TrainStep(net, nn.SGD{LearningRate: 0.01}, x, 3)
	if last >= first {
		t.Errorf("VGG@32 loss did not decrease: %v → %v", first, last)
	}
}

// TestInstantiateAlexNetGST builds AlexNet at 96×96 with the photonic
// activation in place of ReLU.
func TestInstantiateAlexNetGST(t *testing.T) {
	net, err := Instantiate(AlexNet(), 64, 5, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	sawGST := false
	for _, l := range net.Layers() {
		if _, ok := l.(*nn.GSTActivation); ok {
			sawGST = true
		}
		if _, ok := l.(*nn.ReLU); ok {
			t.Error("GST instantiation must not contain ReLU layers")
		}
	}
	if !sawGST {
		t.Fatal("no GST activation layers present")
	}
	x := tensor.New(3, 64, 64)
	out := net.Forward(x)
	if out.Len() != 5 {
		t.Fatalf("output = %d classes, want 5", out.Len())
	}
}

// TestInstantiateLayerCounts: the runnable chain carries the same number
// of conv and dense layers as the descriptor.
func TestInstantiateLayerCounts(t *testing.T) {
	net, err := Instantiate(AlexNet(), 64, 10, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	var convs, denses int
	for _, l := range net.Layers() {
		switch l.(type) {
		case *nn.Conv2D:
			convs++
		case *nn.Dense:
			denses++
		}
	}
	if convs != 5 || denses != 3 {
		t.Errorf("AlexNet instance has %d convs and %d denses, want 5 and 3", convs, denses)
	}
}
