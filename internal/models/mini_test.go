package models

import (
	"testing"

	"trident/internal/dataset"
	"trident/internal/nn"
)

// TestMiniInceptionTrains: the branched inception miniature learns the
// oriented-grating classes end to end.
func TestMiniInceptionTrains(t *testing.T) {
	data := dataset.MiniImages(80, 2, 1, 8, 8, 0.1, 9)
	trainSet, testSet := data.Split(0.75)
	g := MiniInception(1, 8, 2, 11)
	opt := nn.SGD{LearningRate: 0.05}
	for e := 0; e < 12; e++ {
		for i := range trainSet.Inputs {
			nn.GraphTrainStep(g, opt, trainSet.Inputs[i], trainSet.Labels[i])
		}
	}
	if acc := nn.GraphAccuracy(g, testSet.Inputs, testSet.Labels); acc < 0.85 {
		t.Errorf("mini-inception accuracy = %.2f, want ≥ 0.85", acc)
	}
}

// TestMiniResNetTrains: the residual miniature learns too, and its shortcut
// genuinely carries gradient (removing it would change the update).
func TestMiniResNetTrains(t *testing.T) {
	data := dataset.MiniImages(80, 2, 1, 8, 8, 0.1, 13)
	trainSet, testSet := data.Split(0.75)
	g := MiniResNet(1, 8, 2, 17)
	opt, err := nn.NewMomentum(0.03, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	first := nn.GraphTrainStep(g, opt, trainSet.Inputs[0], trainSet.Labels[0])
	for e := 0; e < 12; e++ {
		for i := range trainSet.Inputs {
			nn.GraphTrainStep(g, opt, trainSet.Inputs[i], trainSet.Labels[i])
		}
	}
	last := nn.GraphTrainStep(g, opt, trainSet.Inputs[0], trainSet.Labels[0])
	if last >= first {
		t.Errorf("mini-resnet loss did not decrease: %v → %v", first, last)
	}
	if acc := nn.GraphAccuracy(g, testSet.Inputs, testSet.Labels); acc < 0.85 {
		t.Errorf("mini-resnet accuracy = %.2f, want ≥ 0.85", acc)
	}
}

// TestMiniShapes: output widths match the class counts.
func TestMiniShapes(t *testing.T) {
	gi := MiniInception(1, 8, 5, 1)
	if out := gi.Forward(dataset.MiniImages(1, 2, 1, 8, 8, 0, 1).Inputs[0]); out.Len() != 5 {
		t.Errorf("inception output = %d, want 5", out.Len())
	}
	gr := MiniResNet(1, 8, 4, 1)
	if out := gr.Forward(dataset.MiniImages(1, 2, 1, 8, 8, 0, 1).Inputs[0]); out.Len() != 4 {
		t.Errorf("resnet output = %d, want 4", out.Len())
	}
}
