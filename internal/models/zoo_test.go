package models

import (
	"testing"
)

// within reports whether got is within frac of want.
func within(got, want int64, frac float64) bool {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d <= frac*float64(want)
}

// TestVGG16Exact pins VGG-16 to its published parameter count — the number
// the paper itself quotes ("138 million for VGG-16").
func TestVGG16Exact(t *testing.T) {
	m := VGG16()
	if got := m.TotalWeights(); got != 138357544 {
		t.Errorf("VGG-16 parameters = %d, want 138357544", got)
	}
	// ≈15.5 GMAC.
	if got := m.TotalMACs(); !within(got, 15470264320, 0.01) {
		t.Errorf("VGG-16 MACs = %d, want ≈15.47G", got)
	}
}

// TestAlexNetExact pins AlexNet to the torchvision parameter count.
func TestAlexNetExact(t *testing.T) {
	m := AlexNet()
	if got := m.TotalWeights(); got != 61100840 {
		t.Errorf("AlexNet parameters = %d, want 61100840", got)
	}
	if got := m.TotalMACs(); !within(got, 714188480, 0.05) {
		t.Errorf("AlexNet MACs = %d, want ≈0.71G", got)
	}
}

// TestResNet50Published checks ResNet-50 against its ≈25.6 M parameters and
// ≈4.1 GMAC.
func TestResNet50Published(t *testing.T) {
	m := ResNet50()
	if got := m.TotalWeights(); !within(got, 25557032, 0.02) {
		t.Errorf("ResNet-50 parameters = %d, want ≈25.56M", got)
	}
	if got := m.TotalMACs(); !within(got, 4100000000, 0.10) {
		t.Errorf("ResNet-50 MACs = %d, want ≈4.1G", got)
	}
}

// TestMobileNetV2Published checks MobileNetV2 against ≈3.5 M parameters and
// ≈0.31 GMAC.
func TestMobileNetV2Published(t *testing.T) {
	m := MobileNetV2()
	if got := m.TotalWeights(); !within(got, 3504872, 0.03) {
		t.Errorf("MobileNetV2 parameters = %d, want ≈3.50M", got)
	}
	if got := m.TotalMACs(); !within(got, 314000000, 0.10) {
		t.Errorf("MobileNetV2 MACs = %d, want ≈0.31G", got)
	}
}

// TestGoogleNetPublished checks Inception v1 against its ≈7 M parameters
// (torchvision, no aux heads) and ≈1.6 GMAC.
func TestGoogleNetPublished(t *testing.T) {
	m := GoogleNet()
	if got := m.TotalWeights(); !within(got, 6990000, 0.06) {
		t.Errorf("GoogleNet parameters = %d, want ≈7.0M", got)
	}
	if got := m.TotalMACs(); !within(got, 1600000000, 0.12) {
		t.Errorf("GoogleNet MACs = %d, want ≈1.6G", got)
	}
}

// TestParameterOrdering reproduces the paper's Table V framing: model sizes
// range "from 4 million for GoogleNet to 138 million for VGG-16".
func TestParameterOrdering(t *testing.T) {
	vgg, gn := VGG16(), GoogleNet()
	mb, rn, ax := MobileNetV2(), ResNet50(), AlexNet()
	if !(mb.TotalWeights() < gn.TotalWeights() &&
		gn.TotalWeights() < rn.TotalWeights() &&
		rn.TotalWeights() < ax.TotalWeights() &&
		ax.TotalWeights() < vgg.TotalWeights()) {
		t.Errorf("parameter ordering broken: mb=%d gn=%d rn=%d ax=%d vgg=%d",
			mb.TotalWeights(), gn.TotalWeights(), rn.TotalWeights(),
			ax.TotalWeights(), vgg.TotalWeights())
	}
}

// TestShapesFlowThrough sanity-checks a few landmark intermediate shapes.
func TestShapesFlowThrough(t *testing.T) {
	// VGG-16's fc6 must see 512·7·7 = 25088 inputs.
	for _, l := range VGG16().Layers {
		if l.Name == "fc6" && l.InFeatures != 25088 {
			t.Errorf("VGG fc6 inputs = %d, want 25088", l.InFeatures)
		}
	}
	// AlexNet's fc6 must see 256·6·6 = 9216 inputs.
	for _, l := range AlexNet().Layers {
		if l.Name == "fc6" && l.InFeatures != 9216 {
			t.Errorf("AlexNet fc6 inputs = %d, want 9216", l.InFeatures)
		}
	}
	// GoogleNet's classifier sees 1024 features, ResNet-50's 2048,
	// MobileNetV2's 1280.
	checkFC := func(m *Model, want int) {
		t.Helper()
		for _, l := range m.Layers {
			if l.Kind == KindDense && l.InFeatures != want {
				t.Errorf("%s classifier inputs = %d, want %d", m.Name, l.InFeatures, want)
			}
		}
	}
	checkFC(GoogleNet(), 1024)
	checkFC(ResNet50(), 2048)
	checkFC(MobileNetV2(), 1280)
}

// TestConvSpecsValid re-validates every conv spec in the zoo (the builder
// panics on invalid specs, but this keeps the guarantee explicit).
func TestConvSpecsValid(t *testing.T) {
	for _, m := range All() {
		for _, l := range m.Layers {
			if l.Kind != KindConv {
				continue
			}
			if err := l.Conv.Validate(); err != nil {
				t.Errorf("%s/%s: %v", m.Name, l.Name, err)
			}
			if l.MACs != l.Conv.MACs() {
				t.Errorf("%s/%s MACs inconsistent", m.Name, l.Name)
			}
		}
	}
}

// TestActivationVolumesPositive: every layer must report its output volume,
// which the ADC-traffic model of baseline accelerators depends on.
func TestActivationVolumesPositive(t *testing.T) {
	for _, m := range All() {
		for _, l := range m.Layers {
			if l.Activations <= 0 {
				t.Errorf("%s/%s has no activation volume", m.Name, l.Name)
			}
		}
	}
}

// TestComputeLayers checks the conv/dense filter.
func TestComputeLayers(t *testing.T) {
	m := VGG16()
	cl := m.ComputeLayers()
	if len(cl) != 16 { // 13 conv + 3 fc — the "16" in VGG-16
		t.Errorf("VGG-16 compute layers = %d, want 16", len(cl))
	}
	var macs int64
	for _, l := range cl {
		macs += l.MACs
	}
	if macs != m.TotalMACs() {
		t.Error("compute layers must carry all MACs")
	}
}

// TestByName round-trips the registry.
func TestByName(t *testing.T) {
	for _, m := range All() {
		if got := ByName(m.Name); got == nil || got.Name != m.Name {
			t.Errorf("ByName(%q) failed", m.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

// TestDeterministic: two builds of the same model are identical.
func TestDeterministic(t *testing.T) {
	a, b := ResNet50(), ResNet50()
	if a.TotalWeights() != b.TotalWeights() || a.TotalMACs() != b.TotalMACs() || len(a.Layers) != len(b.Layers) {
		t.Error("model construction must be deterministic")
	}
}
