package models

import (
	"fmt"

	"trident/internal/nn"
	"trident/internal/tensor"
)

// Instantiate builds a runnable nn.Network from a sequential model
// descriptor at an arbitrary square input resolution: the same channel
// counts, kernels, strides and classifier widths, with spatial sizes (and
// the first classifier's fan-in) recomputed for the smaller input. This is
// how the test-suite and examples run "real VGG-16-shaped" networks at
// laptop scale: the 224×224 evaluation geometry feeds the cost models, the
// scaled instance feeds the functional ones.
//
// classes overrides the final classifier width (the descriptors' 1000-way
// ImageNet head is rarely wanted at small scale). useGST selects the GST
// photonic activation instead of ReLU for every activation layer.
func Instantiate(m *Model, inputHW, classes int, useGST bool, seed int64) (*nn.Network, error) {
	if !m.Sequential {
		return nil, fmt.Errorf("models: %s is branched; only sequential models (AlexNet, VGG-16) can be replayed as a chain", m.Name)
	}
	if inputHW < 16 {
		return nil, fmt.Errorf("models: input %d too small (minimum 16)", inputHW)
	}
	if classes < 2 {
		return nil, fmt.Errorf("models: classes %d must be ≥ 2", classes)
	}
	c, h, w := 3, inputHW, inputHW
	var layers []nn.Layer
	denseSeen := false
	lastDense := -1
	for i, l := range m.Layers {
		if l.Kind == KindDense {
			lastDense = i
		}
	}
	newAct := func(name string) nn.Layer {
		if useGST {
			a := nn.NewGSTActivation(name, 0)
			a.MaxOut = 1.0
			return a
		}
		return nn.NewReLU(name)
	}
	for i, l := range m.Layers {
		switch l.Kind {
		case KindConv:
			spec := l.Conv
			spec.InC, spec.InH, spec.InW = c, h, w
			if err := spec.Validate(); err != nil {
				return nil, fmt.Errorf("models: %s/%s at %d input: %w", m.Name, l.Name, inputHW, err)
			}
			layers = append(layers, nn.NewConv2D(l.Name, spec, seed+int64(i)))
			c, h, w = spec.OutC, spec.OutH(), spec.OutW()
		case KindDense:
			in := c * h * w
			if !denseSeen {
				layers = append(layers, nn.NewFlatten("flatten"))
				denseSeen = true
			}
			out := l.OutFeatures
			if i == lastDense {
				out = classes
			}
			layers = append(layers, nn.NewDense(l.Name, in, out, seed+int64(i)))
			c, h, w = out, 1, 1
		case KindMaxPool, KindAvgPool:
			k, stride := l.PoolK, l.PoolStride
			if l.Global {
				k, stride = h, h
			}
			if k > h || k > w {
				return nil, fmt.Errorf("models: %s/%s window %d exceeds %dx%d map at %d input",
					m.Name, l.Name, k, h, w, inputHW)
			}
			spec := tensor.PoolSpec{C: c, H: h, W: w, K: k, Stride: stride}
			if err := spec.Validate(); err != nil {
				return nil, fmt.Errorf("models: %s/%s: %w", m.Name, l.Name, err)
			}
			if l.Kind == KindMaxPool {
				layers = append(layers, nn.NewMaxPool(l.Name, spec))
			} else {
				layers = append(layers, nn.NewAvgPool(l.Name, spec))
			}
			h, w = spec.OutH(), spec.OutW()
		case KindActivation:
			layers = append(layers, newAct(l.Name))
		case KindConcat:
			return nil, fmt.Errorf("models: %s contains a concat; not sequential", m.Name)
		}
	}
	return nn.NewNetwork(layers...), nil
}
