package trident_test

import (
	"fmt"
	"testing"

	"trident"
	"trident/internal/core"
	"trident/internal/dataset"
)

func TestFacadeEvaluate(t *testing.T) {
	tr := trident.NewAccelerator()
	if tr.Name != "Trident" {
		t.Fatalf("accelerator = %q", tr.Name)
	}
	for _, m := range trident.Workloads() {
		res, err := trident.Evaluate(tr, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= 0 || res.Energy <= 0 || res.Latency <= 0 {
			t.Errorf("%s: degenerate result %+v", m.Name, res)
		}
	}
	if len(trident.Baselines()) != 3 || len(trident.EdgeDevices()) != 3 {
		t.Error("baseline sets wrong size")
	}
	if trident.Version == "" {
		t.Error("version missing")
	}
}

func TestFacadeHardwareNetwork(t *testing.T) {
	net, err := trident.NewHardwareNetwork(core.NetworkConfig{
		PE: core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
	}, core.LayerSpec{In: 4, Out: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward([]float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTrainInSitu(t *testing.T) {
	data := dataset.Blobs(100, 2, 4, 0.1, 1)
	res, err := trident.TrainInSitu(data, 8, 5, 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy < 0.8 {
		t.Errorf("facade in-situ accuracy = %.2f", res.TestAccuracy)
	}
}

// ExampleEvaluate shows the one-call inference analysis.
func ExampleEvaluate() {
	tr := trident.NewAccelerator()
	m := trident.Workloads()[1] // MobileNetV2
	res, err := trident.Evaluate(tr, m)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on %s: trains=%v, energy and throughput are positive: %v\n",
		m.Name, res.Accel, res.CanTrain, res.Energy > 0 && res.Throughput > 0)
	// Output: MobileNetV2 on Trident: trains=true, energy and throughput are positive: true
}

// ExampleNewHardwareNetwork shows one in-situ training step on the
// functional model.
func ExampleNewHardwareNetwork() {
	net, err := trident.NewHardwareNetwork(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
		LearningRate: 0.1,
	},
		core.LayerSpec{In: 2, Out: 8, Activate: true},
		core.LayerSpec{In: 8, Out: 2},
	)
	if err != nil {
		panic(err)
	}
	first, err := net.TrainSample([]float64{0.9, -0.4}, 1)
	if err != nil {
		panic(err)
	}
	var last float64
	for i := 0; i < 20; i++ {
		last, err = net.TrainSample([]float64{0.9, -0.4}, 1)
		if err != nil {
			panic(err)
		}
	}
	fmt.Printf("loss decreased: %v\n", last < first)
	// Output: loss decreased: true
}
