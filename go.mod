module trident

go 1.22
