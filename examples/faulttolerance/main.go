// Fault tolerance: kill a growing fraction of the GST weight cells in a
// trained network and watch in-situ training heal the damage — the
// operational payoff of Trident's unified train/inference hardware. A
// device that only runs pre-trained weights has no recovery path when PCM
// cells wear out; a device that trains on its own hardware routes around
// them.
//
// With --lifetime the example instead runs the compressed wear-out
// campaign: cells die organically of endurance exhaustion mid-training,
// the built-in self-test localizes them without oracle access, and the
// remediation scheduler refreshes, wear-levels, heals and masks to hold
// accuracy. It prints the wear/accuracy timeline.
package main

import (
	"flag"
	"fmt"
	"log"

	"trident/internal/core"
	"trident/internal/experiments"
)

func main() {
	log.SetFlags(0)
	lifetime := flag.Bool("lifetime", false, "run the lifetime wear-out campaign (BIST + wear-leveling + self-healing)")
	seed := flag.Int64("seed", 42, "campaign seed (with --lifetime)")
	flag.Parse()
	if *lifetime {
		runLifetime(*seed)
		return
	}
	fmt.Println("== Stuck-cell injection and in-situ healing ==")
	rows, err := experiments.FaultRecovery(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s %-19s %8s %13s %14s\n", "fault rate", "kind", "clean", "after faults", "after healing")
	for _, r := range rows {
		fmt.Printf("%-11s %-19s %7.1f%% %12.1f%% %13.1f%%\n",
			fmt.Sprintf("%.0f%%", r.FaultRate*100), r.Kind,
			r.Clean*100, r.Hurt*100, r.Healed*100)
	}

	fmt.Println("\n== Anatomy of one stuck cell ==")
	pe, err := core.NewPE(core.PEConfig{Rows: 4, Cols: 4, DisableNoise: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := pe.Program([][]float64{{0.5, 0.5, 0.5, 0.5}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("programmed row 0 to 0.5; cell (0,0) reads %.3f\n", pe.Bank().Weight(0, 0))
	if err := pe.InjectFault(0, 0, core.StuckCrystalline); err != nil {
		log.Fatal(err)
	}
	if err := pe.Program([][]float64{{0.5, 0.5, 0.5, 0.5}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after stuck-crystalline fault + reprogram: cell (0,0) reads %.3f (pinned), (0,1) reads %.3f\n",
		pe.Bank().Weight(0, 0), pe.Bank().Weight(0, 1))

	fmt.Println("\n== Endurance context ==")
	fmt.Println("per-cell endurance is ~1e12 switching cycles; at the Table V training")
	fmt.Println("rates that is 55–660 years of continuous training (papertables -only endurance),")
	fmt.Println("so faults arrive slowly — and when they do, the loop above absorbs them.")
	fmt.Println("\nrun with --lifetime to watch a whole deployed life, compressed: cells")
	fmt.Println("dying of wear mid-training, the self-test finding them, the scheduler healing.")
}

// runLifetime executes the compressed wear-out campaign and prints its
// health-check timeline: each row is one scheduler check, with the oracle
// fault count alongside the scheduler's own (oracle-blind) suspect count.
func runLifetime(seed int64) {
	fmt.Println("== Lifetime wear-out campaign ==")
	res, err := experiments.Lifetime(seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.LifetimeTable(res).String())
	fmt.Printf("baseline %.1f%% → final %.1f%%; BIST detected %d/%d wear faults (%.0f%%) with zero oracle access\n",
		res.BaselineAccuracy*100, res.FinalAccuracy*100,
		res.Detected, res.WearFaults, 100*res.DetectionRate)
	fmt.Printf("%d healing runs, %d masked rows, writes/cell mean %.0f max %d\n",
		res.Heals, res.MaskedRows, res.MeanCellWrites, res.MaxCellWrites)
}
