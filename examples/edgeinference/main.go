// Edge inference: evaluate the paper's CNN zoo on all seven modelled edge
// accelerators — Trident, the photonic baselines and the electronic
// devices — under the shared 30 W-class budget, reproducing the data
// behind Figures 4 and 6.
package main

import (
	"fmt"
	"log"

	"trident/internal/accel"
	"trident/internal/models"
	"trident/internal/report"
)

func main() {
	log.SetFlags(0)
	photonic := append([]accel.PhotonicConfig{accel.Trident()}, accel.PhotonicBaselines()...)
	electronic := accel.ElectronicBaselines()

	t := report.NewTable("Edge accelerator comparison (steady state, batch 32)",
		"Model", "Accelerator", "inf/s", "mJ/inf", "Trains?")
	for _, m := range models.All() {
		for _, c := range photonic {
			r, err := accel.EvaluatePhotonic(c, m)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(m.Name, c.Name, r.Throughput, r.Energy.Joules()*1e3, yes(r.CanTrain))
		}
		for _, e := range electronic {
			r, err := accel.EvaluateElectronic(e, m)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(m.Name, e.Name, r.Throughput, r.Energy.Joules()*1e3, yes(r.CanTrain))
		}
	}
	fmt.Print(t.String())

	fmt.Println("\nWhere the margins come from:")
	tr := accel.Trident()
	fmt.Printf("  Trident fits %d PEs in 30 W (PE worst case %v; 0 W weight hold after tuning)\n",
		tr.MaxPEs(30), tr.PEPower())
	for _, b := range accel.PhotonicBaselines() {
		fmt.Printf("  %-11s fits %d PEs (PE worst case %v, %d-bit weights)\n",
			b.Name, b.MaxPEs(30), b.PEPower(), b.Bits)
	}
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
