// Quickstart: program a Trident processing element's PCM-MRR weight bank,
// run one optical matrix-vector multiplication through it, and apply the
// GST photonic activation — the paper's Fig. 1 datapath in a dozen lines.
package main

import (
	"fmt"
	"log"

	"trident/internal/core"
)

func main() {
	log.SetFlags(0)
	// A 4×4 processing element with noiseless detectors, so the numbers
	// below are exactly reproducible.
	pe, err := core.NewPE(core.PEConfig{Rows: 4, Cols: 4, DisableNoise: true})
	if err != nil {
		log.Fatal(err)
	}

	// Program a weight tile into the GST cells. Each weight is realized as
	// one of 255 non-volatile material states (8-bit resolution); all 16
	// cells program in parallel in 300 ns.
	weights := [][]float64{
		{0.50, -0.25, 0.00, 0.75},
		{-1.00, 0.50, 0.25, 0.00},
		{0.10, 0.20, 0.30, 0.40},
		{1.00, 1.00, 1.00, 1.00},
	}
	if err := pe.Program(weights); err != nil {
		log.Fatal(err)
	}

	// One inference pass: the input vector rides four WDM wavelengths, each
	// ring weights its channel, balanced photodetectors accumulate the
	// rows, and the GST activation cell fires only above threshold.
	x := []float64{0.8, 0.4, 0.2, 0.6}
	y, h, err := pe.Infer(x)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("input:            ", x)
	fmt.Println("pre-activations h:", rounded(h))
	fmt.Println("activated y=f(h): ", rounded(y))
	fmt.Println("LDSU derivatives: ", pe.Derivatives())
	fmt.Println()
	fmt.Println("energy ledger after one program + one inference:")
	fmt.Println(pe.Ledger())
	fmt.Printf("\nstandby (weights held, non-volatile): %v\n", pe.HoldPower())
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1000+0.5*sign(x))) / 1000
	}
	return out
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
