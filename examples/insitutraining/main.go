// In-situ training: train a classifier entirely on the functional Trident
// hardware model — optical forward passes, LDSU-latched derivatives,
// gradient-vector passes with the bank holding Wᵀ, outer-product weight
// gradients, and equation (1) updates written back into the GST cells —
// then compare against a digital baseline and against the offline-train-
// then-map flow whose accuracy mismatch motivates the paper.
package main

import (
	"flag"
	"fmt"
	"log"

	"trident/internal/dataset"
	"trident/internal/train"
)

func main() {
	log.SetFlags(0)
	model := flag.String("model", "mlp",
		"architecture: mlp (dense stack) or branched (residual+concat mini-model on the execution graph)")
	flag.Parse()
	if *model == "branched" {
		runBranched()
		return
	}
	if *model != "mlp" {
		log.Fatalf("unknown -model %q (want mlp or branched)", *model)
	}
	data := dataset.Blobs(600, 3, 6, 0.1, 42)

	fmt.Println("== In-situ training on Trident hardware (noiseless analog) ==")
	res, err := train.RunInSitu(data, 16, 10, 0.08, false)
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	fmt.Println("\n== Same run with BPD shot/thermal noise enabled ==")
	noisy, err := train.RunInSitu(data, 16, 10, 0.08, true)
	if err != nil {
		log.Fatal(err)
	}
	report(noisy)

	digital := train.DigitalBaselineAccuracy(data, 16, 10, 0.08, 7)
	fmt.Printf("\ndigital float baseline (same architecture): %.1f%% test accuracy\n", digital*100)

	fmt.Println("\n== Offline-train-then-map mismatch (Section I motivation) ==")
	tight := dataset.Blobs(1000, 12, 6, 0.35, 5)
	mm, err := train.RunMismatch(tight, 24, 30, 0.1, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  float reference          %.1f%%\n", mm.FloatAccuracy*100)
	fmt.Printf("  mapped to 8-bit GST      %.1f%%  (drop %.1f points)\n",
		mm.EightBit*100, (mm.FloatAccuracy-mm.EightBit)*100)
	fmt.Printf("  mapped to 6-bit thermal  %.1f%%  (drop %.1f points)\n",
		mm.SixBit*100, (mm.FloatAccuracy-mm.SixBit)*100)
	fmt.Println("\nTraining on the same hardware that serves inference removes this gap —")
	fmt.Println("the weights the PCM cells learn are the weights the PCM cells use.")
}

// runBranched trains the branched mini-model — stem conv, body conv,
// residual add, channel concat, GAP, linear head — end to end on the
// photonic core: every conv kernel and the classifier live in PCM banks,
// and the joins book their optical summation / wavelength-merge energy.
func runBranched() {
	data := dataset.MiniImages(160, 2, 1, 8, 8, 0.05, 42)

	fmt.Println("== Branched model (conv→conv→add→concat→GAP→dense), noiseless analog ==")
	res, err := train.RunBranched(data, 6, 0.08, false)
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	fmt.Println("\n== Same run with BPD shot/thermal noise enabled ==")
	noisy, err := train.RunBranched(data, 6, 0.08, true)
	if err != nil {
		log.Fatal(err)
	}
	report(noisy)
}

func report(r *train.InSituResult) {
	fmt.Printf("  train accuracy  %.1f%%\n", r.TrainAccuracy*100)
	fmt.Printf("  test accuracy   %.1f%%\n", r.TestAccuracy*100)
	fmt.Printf("  final loss      %.4f\n", r.FinalLoss)
	fmt.Printf("  energy          %v, %.1f%% spent programming GST (cf. Table III's 83.3%%)\n",
		r.Energy, r.TuningShare*100)
}
