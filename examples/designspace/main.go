// Design-space exploration: how the paper's architectural choices move the
// operating point. Sweeps the tuning mechanism (the Table I choice), the
// weight-bank geometry, the power budget, and the batch amortization, all
// on ResNet-50.
package main

import (
	"fmt"
	"log"

	"trident/internal/accel"
	"trident/internal/dataflow"
	"trident/internal/device"
	"trident/internal/models"
	"trident/internal/report"
	"trident/internal/units"
)

func main() {
	log.SetFlags(0)
	m := models.ResNet50()

	// 1. Tuning mechanism at a fixed 30 W: the core Table I trade.
	t1 := report.NewTable("Tuning mechanism @ 30 W on ResNet-50",
		"Design", "PEs", "bits", "inf/s", "mJ/inf", "trains?")
	for _, c := range append([]accel.PhotonicConfig{accel.Trident()}, accel.PhotonicBaselines()...) {
		r, err := accel.EvaluatePhotonic(c, m)
		if err != nil {
			log.Fatal(err)
		}
		trains := "no"
		if c.CanTrain {
			trains = "yes"
		}
		t1.AddRow(c.Name, fmt.Sprintf("%d", c.MaxPEs(device.PowerBudget)),
			fmt.Sprintf("%d", c.Bits), r.Throughput, r.Energy.Joules()*1e3, trains)
	}
	fmt.Print(t1.String())

	// 2. Power budget sweep: how performance scales with the edge envelope.
	t2 := report.NewTable("\nPower budget sweep (Trident on ResNet-50)",
		"Budget", "PEs", "inf/s")
	tr := accel.Trident()
	for _, w := range []float64{5, 10, 15, 30, 60} {
		pes := tr.MaxPEs(units.Power(w))
		g := dataflow.Geometry{PEs: pes, Rows: device.WeightBankRows, Cols: device.WeightBankCols}
		mp, err := dataflow.Map(m, g)
		if err != nil {
			log.Fatal(err)
		}
		period := device.ClockRate.Period().Seconds()
		perInf := float64(mp.TotalWaves())*tr.TuneTime.Seconds()/accel.DefaultBatch +
			float64(mp.TotalStreamCycles())*accel.VectorCyclesPerSymbol*period
		t2.AddRow(fmt.Sprintf("%.0fW", w), fmt.Sprintf("%d", pes), 1/perInf)
	}
	fmt.Print(t2.String())

	// 3. Batch amortization: weight-stationary reuse versus single-shot
	// latency. The crossover shows why non-volatile weights matter most at
	// small batch.
	t3 := report.NewTable("\nBatch amortization (Trident vs DEAP-CNN on ResNet-50)",
		"Batch", "Trident inf/s", "DEAP inf/s", "advantage")
	deap := accel.DEAPCNN()
	for _, b := range []int{1, 2, 4, 8, 16, 32, 128} {
		rt, err := accel.EvaluatePhotonicBatch(tr, m, b)
		if err != nil {
			log.Fatal(err)
		}
		rd, err := accel.EvaluatePhotonicBatch(deap, m, b)
		if err != nil {
			log.Fatal(err)
		}
		t3.AddRow(fmt.Sprintf("%d", b), rt.Throughput, rd.Throughput,
			fmt.Sprintf("%.2f×", rt.Throughput/rd.Throughput))
	}
	fmt.Print(t3.String())

	// 4. Full weight-bank geometry exploration under the 30 W budget: each
	// geometry is re-provisioned (its own PE power, its own PE count).
	pts, err := accel.ExploreBankGeometry(m, device.PowerBudget)
	if err != nil {
		log.Fatal(err)
	}
	t4 := report.NewTable("\nBank geometry exploration @ 30 W (top 8 by throughput)",
		"Bank", "PEs", "PE power", "inf/s", "mJ/inf")
	shown := 0
	for _, p := range pts {
		if !p.Feasible || shown == 8 {
			continue
		}
		shown++
		t4.AddRow(fmt.Sprintf("%d×%d", p.Rows, p.Cols), fmt.Sprintf("%d", p.PEs),
			p.PEPower.String(), p.Throughput, p.Energy.Joules()*1e3)
	}
	fmt.Print(t4.String())
	best, err := accel.BestGeometry(m, device.PowerBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best geometry %d×%d; the paper's 16×16 trades ≈%.0f%% peak throughput for 0.68 W PEs\n",
		best.Rows, best.Cols, 100*(1-1698.0/best.Throughput))
}
