GO ?= go

.PHONY: tier1 tier2 tier2-reliability bench all

all: tier1

# Tier 1: vet + build + full test suite (the gate every change must keep
# green).
tier1:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Tier 2: static analysis + race-detector run over the whole repo.
tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Tier 2 reliability: the fault campaigns under the race detector, plus
# short fuzz runs over the PCM cell state machines the wear model leans on.
tier2-reliability:
	$(GO) test -race -run 'Campaign|Wear|Fault|BIST|Scheduler|Drift' ./internal/reliability/ ./internal/core/ ./internal/mrr/ ./internal/pcm/
	$(GO) test -run '^$$' -fuzz '^FuzzActivationCell$$' -fuzztime 10s ./internal/pcm/
	$(GO) test -run '^$$' -fuzz '^FuzzCellProgram$$' -fuzztime 10s ./internal/pcm/

# Hot-path and experiment benchmarks with allocation reporting.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
