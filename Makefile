GO ?= go

.PHONY: tier1 tier1-fmt tier2 tier2-reliability bench bench-all bench-profile clean all

all: tier1

# Tier 1: vet + build + full test suite (the gate every change must keep
# green).
tier1:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Tier 1 formatting gate: the tree must be gofmt-clean and vet-clean.
# gofmt -l prints offending files; any output fails the target.
tier1-fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# Tier 2: static analysis + race-detector run over the whole repo.
tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Tier 2 reliability: the fault campaigns, batch-serving equality tests,
# execution-graph equivalence/golden-regression tests, and the dirty-row
# recompilation property/staleness tests under the race detector, plus short
# fuzz runs over the PCM cell state machines the wear model leans on. The
# whole serve package (the chaos soak, the router/instance tests, and the
# routed 2-models×2-replicas soak — which drains each replica under live
# traffic and replays every per-replica op journal for bit-identity) also
# runs under -race here — its correctness claims are concurrency claims.
tier2-reliability:
	$(GO) test -race -run 'Campaign|Wear|Fault|BIST|Scheduler|Drift|Batch|Golden|Graph|Recompile|Dirty|Stale|NoOp|ParallelBitIdentical' ./internal/reliability/ ./internal/core/ ./internal/mrr/ ./internal/pcm/
	$(GO) test -race -count=2 ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzActivationCell$$' -fuzztime 10s ./internal/pcm/
	$(GO) test -run '^$$' -fuzz '^FuzzCellProgram$$' -fuzztime 10s ./internal/pcm/

# Benchmark trajectory: the kernel/batch/recompilation microbenchmarks, the
# training pair, the two regenerating-table benchmarks, the serving
# throughput pair, the routed-replica pair, and the pipelined-execution
# pair, BENCH_COUNT repetitions with allocation reporting, parsed into the
# machine-readable trajectory file (BENCH_OUT, default
# BENCH_PR10.json). cmd/benchjson exits non-zero unless the factored kernel
# holds ≥2× over the reference triple loop on the 64×64 bank, the compiled
# batch kernel ≥1.5× over the factored kernel on the 256×256 batched MVM,
# the incremental dirty-row recompile ≥5× over a full snapshot rebuild on
# the 256×256 bank, the pool-parallel batch GEMM ≥1.5× over the
# single-threaded batch on the 256×256 bank (recorded but waived on
# single-CPU hosts, where no parallel speedup is physically available —
# multi-core CI enforces it), the micro-batching serve front-end ≥1.2×
# requests/second over single-request dispatch, batched in-situ training
# ≥2× per-sample throughput over the sequential TrainSample schedule on the
# 256×256 layer, two-replica routed serving ≥1.3× a single replica
# under maintenance churn (ApplyParallelGate: recorded but waived below 2
# CPUs, where the sibling replicas cannot actually run concurrently), and
# 4-stage pipelined DeepCNN batch execution ≥1.4× the sequential batched
# path (recorded but waived below 4 CPUs, where four stage workers cannot
# actually overlap).
BENCH_OUT ?= BENCH_PR10.json
BENCH_COUNT ?= 6
BENCH_PATTERN = ^(BenchmarkBankMVM|BenchmarkBankMVMCompiled|BenchmarkBankMVMFactored|BenchmarkBankMVMReference|BenchmarkBankMVMBatch|BenchmarkBankMVMBatchFactored|BenchmarkBankMVMBatchParallel|BenchmarkBankRecompileFull|BenchmarkBankRecompileIncremental|BenchmarkBankProgram|BenchmarkTrainStep|BenchmarkTrainBatch|BenchmarkTransposeCompiled|BenchmarkTableIII_PowerBreakdown|BenchmarkFigure6_InferencesPerSecond|BenchmarkServeBatcher|BenchmarkServeUnbatched|BenchmarkRouterOneReplica|BenchmarkRouterTwoReplicas|BenchmarkDeepCNNBatchSequential|BenchmarkDeepCNNBatchPipelined)$$

bench:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) . > bench.out
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < bench.out
	@rm -f bench.out

# Profiled trajectory run: the same benchmarks through `trident bench` with
# CPU and allocation profiles captured for `go tool pprof` (see DESIGN.md
# §11/§12 for captured excerpts). Writes its (single-repetition, profiled)
# trajectory to a scratch file so the tracked $(BENCH_OUT) keeps the
# unprofiled six-repetition numbers from `make bench`.
bench-profile:
	$(GO) run ./cmd/trident bench -o bench-profile.json -cpuprofile cpu.pprof -memprofile mem.pprof

# The full benchmark suite (every table, figure and hot path), no trajectory
# file.
bench-all:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Remove benchmark/profiling byproducts (the tracked BENCH_*.json
# trajectories are left alone).
clean:
	rm -f cpu.pprof mem.pprof bench-profile.json bench.out
