GO ?= go

.PHONY: tier1 tier2 bench all

all: tier1

# Tier 1: build + full test suite (the gate every change must keep green).
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Tier 2: static analysis + race-detector run over the whole repo.
tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Hot-path and experiment benchmarks with allocation reporting.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
