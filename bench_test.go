package trident

// The benchmark harness: one Benchmark per paper table and figure (each
// regenerates the artifact end to end), plus micro-benchmarks on the
// simulator's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// and compare the printed artifacts against EXPERIMENTS.md.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trident/internal/accel"
	"trident/internal/core"
	"trident/internal/dataflow"
	"trident/internal/dataset"
	"trident/internal/device"
	"trident/internal/eventsim"
	"trident/internal/experiments"
	"trident/internal/models"
	"trident/internal/mrr"
	"trident/internal/optics"
	"trident/internal/pcm"
	"trident/internal/serve"
	"trident/internal/tensor"
	"trident/internal/train"
)

// BenchmarkTableI_TuningMethods regenerates Table I (device constants) and
// times one programming event of each tuner mechanism.
func BenchmarkTableI_TuningMethods(b *testing.B) {
	b.ReportAllocs()
	thermal := mrr.NewThermalTuner()
	gst, err := mrr.NewPCMTuner()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := rng.Float64()*2 - 1
		if _, _, err := thermal.Set(w, 0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := gst.Set(w, 0); err != nil {
			b.Fatal(err)
		}
		_ = experiments.TableI()
	}
}

// BenchmarkTableIII_PowerBreakdown regenerates the PE power table.
func BenchmarkTableIII_PowerBreakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := experiments.TableIII()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIV_TOPS regenerates the accelerator comparison, including
// the first-principles Trident TOPS computation.
func BenchmarkTableIV_TOPS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIVData()
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTableV_TrainingTime regenerates the 50,000-image training-time
// estimates (four full dataflow mappings per iteration).
func BenchmarkTableV_TrainingTime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableVData()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFigure3_ActivationCurve samples the GST activation transfer
// function.
func BenchmarkFigure3_ActivationCurve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure3(256)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Series[0].X) != 256 {
			b.Fatal("bad curve")
		}
	}
}

// BenchmarkFigure4_PhotonicEnergy regenerates the 5-model × 4-accelerator
// energy comparison.
func BenchmarkFigure4_PhotonicEnergy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4Data()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFigure5_Area regenerates the chip-area breakdown.
func BenchmarkFigure5_Area(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := experiments.Figure5()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure6_InferencesPerSecond regenerates the 5-model ×
// 7-accelerator throughput comparison.
func BenchmarkFigure6_InferencesPerSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6Data()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 35 {
			b.Fatal("bad row count")
		}
	}
}

// --- micro-benchmarks on simulator hot paths ---

// BenchmarkOpticalMVM times one 16×16 optical matrix-vector pass through a
// programmed PCM weight bank (with crosstalk, without noise).
func BenchmarkOpticalMVM(b *testing.B) {
	b.ReportAllocs()
	pe, err := core.NewPE(core.PEConfig{DisableNoise: true})
	if err != nil {
		b.Fatal(err)
	}
	w := make([][]float64, 16)
	rng := rand.New(rand.NewSource(2))
	for j := range w {
		w[j] = make([]float64, 16)
		for i := range w[j] {
			w[j][i] = rng.Float64()*2 - 1
		}
	}
	if err := pe.Program(w); err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()
	}
	out := make([]float64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pe.MVMPassInto(out, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPEProgram times reprogramming a full 256-cell weight bank.
func BenchmarkPEProgram(b *testing.B) {
	b.ReportAllocs()
	pe, err := core.NewPE(core.PEConfig{DisableNoise: true})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	w := make([][]float64, 16)
	for j := range w {
		w[j] = make([]float64, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range w {
			for k := range w[j] {
				w[j][k] = rng.Float64()*2 - 1
			}
		}
		if err := pe.Program(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInSituTrainStep times one full hardware training step (forward,
// gradient-vector, outer-product, update, reprogram) on a 6→16→3 network.
func BenchmarkInSituTrainStep(b *testing.B) {
	b.ReportAllocs()
	net, err := core.NewNetwork(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
		LearningRate: 0.05,
	},
		core.LayerSpec{In: 6, Out: 16, Activate: true},
		core.LayerSpec{In: 16, Out: 3},
	)
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.5, -0.3, 0.8, 0.1, -0.7, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainSample(x, i%3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGSTProgram times one phase-change cell write.
func BenchmarkGSTProgram(b *testing.B) {
	b.ReportAllocs()
	cell, err := pcm.NewCell(pcm.CellConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.Program(i%device.GSTLevels, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// trainBenchBatch is the minibatch size of the training-throughput pair:
// both benchmarks process exactly trainBenchBatch samples per op, so their
// ns/op ratio is a per-sample speedup.
const trainBenchBatch = 32

// trainBenchNet builds the 256→256→classes training benchmark network on
// 32×32 banks — an 8×8 tile grid on the wide layer, the geometry the ≥2×
// batched-training gate is measured on.
func trainBenchNet(b *testing.B) *core.Network {
	b.Helper()
	net, err := core.NewNetwork(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 32, Cols: 32, DisableNoise: true},
		LearningRate: 0.05,
	},
		core.LayerSpec{In: 256, Out: 256, Activate: true},
		core.LayerSpec{In: 256, Out: 3},
	)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkTrainStep times trainBenchBatch sequential TrainSample steps per
// op on the 256×256 layer — the per-sample schedule in which every step
// pays forward, backward AND the post-update bank reprogram. The reference
// side of the ≥2× batched-training gate.
func BenchmarkTrainStep(b *testing.B) {
	b.Run("256x256", func(b *testing.B) {
		net := trainBenchNet(b)
		xs := benchInput(trainBenchBatch*256, 5)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for s := 0; s < trainBenchBatch; s++ {
				if _, err := net.TrainSample(xs[s*256:(s+1)*256], s%3); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*trainBenchBatch/b.Elapsed().Seconds(), "samples/sec")
	})
}

// BenchmarkTrainBatch times one TrainBatch minibatch of the same
// trainBenchBatch samples per op: one batched forward on resident weights,
// reprogram-free batched transpose GEMMs, one blocked ΔHᵀ·X contraction and
// one weight update per layer. The fast side of the ≥2× gate.
func BenchmarkTrainBatch(b *testing.B) {
	b.Run("256x256", func(b *testing.B) {
		net := trainBenchNet(b)
		xs := benchInput(trainBenchBatch*256, 5)
		labels := make([]int, trainBenchBatch)
		for s := range labels {
			labels[s] = s % 3
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.TrainBatch(xs, labels); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*trainBenchBatch/b.Elapsed().Seconds(), "samples/sec")
	})
}

// BenchmarkTransposeCompiled times the compiled transpose GEMV — the Wᵀ·δ
// backward pass served from the shared snapshot's transpose view with zero
// bank reprogramming — across the bank-geometry sweep.
func BenchmarkTransposeCompiled(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			bank.EnsureTransposeCompiled()
			delta := benchInput(size, 11)
			dst := make([]float64, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.TransposeMVM(dst, delta)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkDataflowMapResNet50 times a full weight-stationary mapping of
// ResNet-50 onto the 44-PE array.
func BenchmarkDataflowMapResNet50(b *testing.B) {
	b.ReportAllocs()
	m := models.ResNet50()
	g := dataflow.Geometry{PEs: device.TridentPEs, Rows: 16, Cols: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataflow.Map(m, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConv2DIm2col times the im2col convolution on a mid-network
// ResNet-shaped layer.
func BenchmarkConv2DIm2col(b *testing.B) {
	b.ReportAllocs()
	s := tensor.Conv2DSpec{InC: 64, InH: 28, InW: 28, OutC: 64, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
	in := tensor.New(s.InC, s.InH, s.InW)
	k := tensor.New(s.OutC, s.InC*s.KH*s.KW)
	rng := rand.New(rand.NewSource(4))
	for i := range in.Data() {
		in.Data()[i] = rng.NormFloat64()
	}
	for i := range k.Data() {
		k.Data()[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tensor.Conv2D(in, k, s)
		if out.Len() == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkMatMul times the parallel GEMM on a 256×256 product.
func BenchmarkMatMul(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	a := tensor.New(256, 256)
	c := tensor.New(256, 256)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
		c.Data()[i] = rng.NormFloat64()
	}
	dst := tensor.New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, a, c)
	}
}

// BenchmarkEvaluateAllAccelerators times one full seven-accelerator,
// five-model evaluation sweep (the whole evaluation section in one call).
func BenchmarkEvaluateAllAccelerators(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range models.All() {
			for _, c := range append([]accel.PhotonicConfig{accel.Trident()}, accel.PhotonicBaselines()...) {
				if _, err := accel.EvaluatePhotonic(c, m); err != nil {
					b.Fatal(err)
				}
			}
			for _, e := range accel.ElectronicBaselines() {
				if _, err := accel.EvaluateElectronic(e, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkInSituEpoch times a full in-situ training epoch on synthetic
// blobs (150 samples through the hardware model).
func BenchmarkInSituEpoch(b *testing.B) {
	b.ReportAllocs()
	data := dataset.Blobs(150, 3, 6, 0.1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.RunInSitu(data, 16, 1, 0.08, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStudy regenerates the design-choice ablation table
// (Trident vs its -ADC / -Volatile / -SlowTune variants).
func BenchmarkAblationStudy(b *testing.B) {
	b.ReportAllocs()
	m := models.ResNet50()
	for i := 0; i < b.N; i++ {
		rows, err := accel.AblationStudy(m)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkHardwareCNNTrainStep times one in-situ training step of the
// functional convolutional classifier (per-pixel optical passes and
// hardware outer products on an 8×8 image).
func BenchmarkHardwareCNNTrainStep(b *testing.B) {
	b.ReportAllocs()
	cnn, err := core.NewCNN(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
		LearningRate: 0.1,
	}, tensor.Conv2DSpec{InC: 1, InH: 8, InW: 8, OutC: 6, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}, 2)
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.New(1, 8, 8)
	for i := range img.Data() {
		img.Data()[i] = 0.3 * float64(i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cnn.TrainSample(img, i%2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- bank-kernel and batched-path microbenchmarks ---
//
// These feed the benchmark-trajectory harness (`make bench`, `trident
// bench`): cmd/benchjson parses their output into BENCH_PR6.json and
// enforces four gates — the factored kernel ≥2× over the reference triple
// loop on the 64×64 bank, the compiled batch kernel ≥1.5× over the
// factored kernel on the 256×256 batched MVM, the incremental dirty-row
// recompile ≥5× over a full snapshot rebuild on the 256×256 bank, and the
// worker-pool-parallel batch GEMM ≥1.5× over the single-threaded batch on
// the 256×256 bank (waived below 2 CPUs).

// bankSizes are the square bank geometries the kernel benchmarks sweep: the
// paper's 16×16 PE bank plus 64- and 256-column stress widths on the
// extended (multi-comb) channel plan.
var bankSizes = []int{16, 64, 256}

// benchBank builds a programmed size×size PCM bank for kernel benchmarks.
func benchBank(b *testing.B, size int) *mrr.WeightBank {
	b.Helper()
	plan, err := optics.NewExtendedChannelPlan(size)
	if err != nil {
		b.Fatal(err)
	}
	bank, err := mrr.NewPCMWeightBank(size, size, plan)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(size)))
	w := make([][]float64, size)
	for j := range w {
		w[j] = make([]float64, size)
		for i := range w[j] {
			w[j][i] = rng.Float64()*2 - 1
		}
	}
	if _, err := bank.Program(w, 0); err != nil {
		b.Fatal(err)
	}
	return bank
}

func benchInput(size int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, size)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

// BenchmarkBankMVM times the production bank path (the compiled-snapshot
// GEMV on the default build).
func BenchmarkBankMVM(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			x := benchInput(size, 9)
			dst := make([]float64, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.MVM(dst, x)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkBankMVMCompiled times the compiled-snapshot GEMV kernel
// explicitly (independent of build tags), so the trajectory records it even
// under -tags=slowmvm.
func BenchmarkBankMVMCompiled(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			x := benchInput(size, 9)
			dst := make([]float64, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.CompiledMVM(dst, x)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkBankMVMFactored times the PR 3 factored kernel — the numerator
// of the ≥2× factored-vs-reference gate and the baseline the compiled
// kernel is measured against.
func BenchmarkBankMVMFactored(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			x := benchInput(size, 9)
			dst := make([]float64, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.FactoredMVM(dst, x)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkBankMVMReference times the reference triple-loop kernel on the
// same banks — the denominator of the ≥2× trajectory gate.
func BenchmarkBankMVMReference(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			x := benchInput(size, 9)
			dst := make([]float64, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.ReferenceMVM(dst, x)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkBankMVMBatch streams 32-sample batches through the production
// bank path (the register-blocked compiled kernel on the default build),
// reporting per-sample throughput — the numerator of the ≥1.5×
// compiled-vs-factored batch gate on the 256×256 geometry.
func BenchmarkBankMVMBatch(b *testing.B) {
	const batch = 32
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			xs := benchInput(batch*size, 9)
			dst := make([]float64, batch*size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.MVMBatchInto(dst, xs, batch, size)
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkBankMVMBatchFactored is the batched path pinned to the PR 3
// factored kernel — the denominator of the compiled-vs-factored batch gate.
func BenchmarkBankMVMBatchFactored(b *testing.B) {
	const batch = 32
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			xs := benchInput(batch*size, 9)
			dst := make([]float64, batch*size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.FactoredMVMBatchInto(dst, xs, batch, size)
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkBankRecompileFull times a whole-snapshot rebuild: RotateRows(0)
// is a pure whole-bank invalidation (the row map is unchanged, so every
// iteration recompiles an identical bank), and EnsureCompiled pays the full
// O(J·N·r) compile. The denominator of the ≥5× incremental-recompile gate;
// ReportAllocs pins the steady-state zero-allocation contract on the reused
// weff buffer.
func BenchmarkBankRecompileFull(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			bank.EnsureCompiled()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bank.RotateRows(0)
				bank.EnsureCompiled()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recompiles/sec")
		})
	}
}

// BenchmarkBankRecompileIncremental times the dirty-row path: one cell
// override (alternating values so the mutation is never a no-op) dirties a
// single row, and EnsureCompiled recompiles just that row in place — the
// reliability scheduler's refresh-a-few-rows regime. The numerator of the
// ≥5× gate against BenchmarkBankRecompileFull on the 256×256 geometry.
func BenchmarkBankRecompileIncremental(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			bank.EnsureCompiled()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := 0.4321
				if i%2 == 1 {
					v = -v
				}
				bank.OverrideWeight(size/2, size/2, v)
				bank.EnsureCompiled()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recompiles/sec")
		})
	}
}

// BenchmarkBankMVMBatchParallel is BenchmarkBankMVMBatch with the tile
// engine's worker pool installed as the bank's ParallelFor hook — the
// configuration every PE-owned bank runs in production. The numerator of
// the ≥1.5× parallel-batch gate on the 256×256 geometry at GOMAXPROCS
// workers (the gate is recorded but waived on single-CPU hosts, where no
// parallel speedup is physically available).
func BenchmarkBankMVMBatchParallel(b *testing.B) {
	const batch = 32
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			bank.SetParallelFor(core.RunIndexed)
			xs := benchInput(batch*size, 9)
			dst := make([]float64, batch*size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bank.MVMBatchInto(dst, xs, batch, size)
			}
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "MVMs/sec")
		})
	}
}

// BenchmarkBankProgram times full-bank reprogramming across the same
// geometry sweep (two alternating weight sets so the compare-first write
// logic cannot elide the writes).
func BenchmarkBankProgram(b *testing.B) {
	for _, size := range bankSizes {
		b.Run(fmt.Sprintf("%dx%d", size, size), func(b *testing.B) {
			bank := benchBank(b, size)
			sets := make([][][]float64, 2)
			rng := rand.New(rand.NewSource(77))
			for s := range sets {
				sets[s] = make([][]float64, size)
				for j := range sets[s] {
					sets[s][j] = make([]float64, size)
					for i := range sets[s][j] {
						sets[s][j][i] = rng.Float64()*2 - 1
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bank.Program(sets[i%2], 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBankGeometryDSE regenerates the weight-bank design-space
// exploration (25 geometries, each fully re-provisioned and mapped).
func BenchmarkBankGeometryDSE(b *testing.B) {
	b.ReportAllocs()
	m := models.ResNet50()
	for i := 0; i < b.N; i++ {
		pts, err := accel.ExploreBankGeometry(m, device.PowerBudget)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 25 {
			b.Fatal("bad point count")
		}
	}
}

// BenchmarkEventSimSerial times the discrete-event validation schedule of
// ResNet-50 on the 44-PE array.
func BenchmarkEventSimSerial(b *testing.B) {
	b.ReportAllocs()
	m := models.ResNet50()
	cfg := accel.Trident()
	for i := 0; i < b.N; i++ {
		r, err := eventsim.Simulate(m, cfg, eventsim.Serial, accel.DefaultBatch)
		if err != nil {
			b.Fatal(err)
		}
		if r.Latency <= 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkDeepCNNTrainStep times one in-situ training step through two
// stacked hardware convolution stages (per-pixel transpose and
// outer-product passes at every stage).
func BenchmarkDeepCNNTrainStep(b *testing.B) {
	b.ReportAllocs()
	d, err := core.NewDeepCNN(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
		LearningRate: 0.1,
	}, []tensor.Conv2DSpec{
		{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1},
		{InC: 4, InH: 8, InW: 8, OutC: 6, KH: 3, KW: 3,
			StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Groups: 1},
	}, 2)
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.New(1, 8, 8)
	for i := range img.Data() {
		img.Data()[i] = 0.2 * float64(i%7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.TrainSample(img, i%2); err != nil {
			b.Fatal(err)
		}
	}
}

// serveBenchNet builds the serving-benchmark workload: a wider MLP than
// the unit-test miniatures so the batched forward path has real work to
// amortize per-request overhead against.
func serveBenchNet(b *testing.B) *core.Network {
	b.Helper()
	net, err := core.NewNetwork(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
		LearningRate: 0.08,
	},
		core.LayerSpec{In: 32, Out: 64, Activate: true},
		core.LayerSpec{In: 64, Out: 8},
	)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// benchServe drives b.N requests through a serving batcher from
// serveClients concurrent clients and reports requests/second. The fixed
// client count models a steady p99-bounded load; the config under test
// decides whether requests coalesce.
func benchServe(b *testing.B, cfg serve.Config) {
	net := serveBenchNet(b)
	bt := serve.NewBatcher(net.Graph, cfg)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := bt.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()
	const serveClients = 16
	rng := rand.New(rand.NewSource(3))
	inputs := make([][]float64, serveClients)
	for c := range inputs {
		x := make([]float64, 32)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		inputs[c] = x
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	var next atomic.Int64
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if _, err := bt.Submit(context.Background(), inputs[c]); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkServeBatcher measures serving throughput with micro-batching
// on: up to 16 concurrent requests coalesce into one batched forward pass.
func BenchmarkServeBatcher(b *testing.B) {
	benchServe(b, serve.Config{MaxBatch: 16, MaxWait: 100 * time.Microsecond, QueueCap: 64})
}

// BenchmarkServeUnbatched is the degenerate-window baseline: the same
// serving stack forced to one request per engine pass, so the pair
// isolates exactly what coalescing buys at the same concurrency.
func BenchmarkServeUnbatched(b *testing.B) {
	benchServe(b, serve.Config{MaxBatch: 1, MaxWait: 100 * time.Microsecond, QueueCap: 64})
}

// benchRouter drives b.N routed requests through one model with the given
// replica count while a churn goroutine forces maintenance-style drains:
// round-robin over the replicas, it acquires each execute token, holds it
// ~1ms (a BIST-window stand-in using the exact drain path real
// maintenance takes), and releases. With one replica every hold stalls
// the world; with two the router shifts traffic to the warm sibling, so
// the pair isolates what replica fan-out buys under maintenance churn.
func benchRouter(b *testing.B, replicas int) {
	base := serveBenchNet(b)
	rt := serve.NewRouter()
	insts := make([]*serve.Instance, replicas)
	for i := range insts {
		rep, err := base.Replicate()
		if err != nil {
			b.Fatal(err)
		}
		inst, err := serve.NewGraphInstance(fmt.Sprintf("m/replica-%d", i), rep.Graph,
			serve.Config{MaxBatch: 16, MaxWait: 100 * time.Microsecond, QueueCap: 64}, nil)
		if err != nil {
			b.Fatal(err)
		}
		insts[i] = inst
	}
	if err := rt.AddModel("m", insts...); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()

	churnCtx, stopChurn := context.WithCancel(context.Background())
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; churnCtx.Err() == nil; i++ {
			inst := insts[i%len(insts)]
			release, err := inst.Batcher().Acquire(churnCtx)
			if err != nil {
				return
			}
			select {
			case <-time.After(time.Millisecond):
			case <-churnCtx.Done():
			}
			release()
			select {
			case <-time.After(500 * time.Microsecond):
			case <-churnCtx.Done():
			}
		}
	}()

	const serveClients = 16
	rng := rand.New(rand.NewSource(3))
	inputs := make([][]float64, serveClients)
	for c := range inputs {
		x := make([]float64, 32)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		inputs[c] = x
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	var next atomic.Int64
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				// All replicas draining (single-replica churn window) and
				// transient backpressure are retried, not failed — the
				// benchmark measures end-to-end goodput under churn.
				for {
					_, err := rt.Submit(context.Background(), "m", inputs[c])
					if err == nil {
						break
					}
					if errors.Is(err, serve.ErrAllDraining) || errors.Is(err, serve.ErrQueueFull) {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	stopChurn()
	<-churnDone
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

// BenchmarkRouterOneReplica is the churn baseline: a single replica means
// every maintenance hold stops the model cold and requests queue or
// bounce until the window ends.
func BenchmarkRouterOneReplica(b *testing.B) {
	benchRouter(b, 1)
}

// BenchmarkRouterTwoReplicas is the drain-tolerance case: the router
// shifts traffic to the warm sibling during each hold. The benchjson gate
// requires ≥1.3× the single-replica throughput, waived below two CPUs
// where the siblings cannot actually run concurrently.
func BenchmarkRouterTwoReplicas(b *testing.B) {
	benchRouter(b, 2)
}

// pipeBenchBatch is the per-op batch size of the pipelined-execution pair:
// both benchmarks push exactly this many samples per op, so their ns/op
// ratio is the batch-throughput speedup of stage pipelining.
const pipeBenchBatch = 64

// pipeBenchGraph builds the pipelined-throughput workload: a four-conv
// DeepCNN graph (input, four convs, GAP, dense — seven nodes), deep enough
// that a 4-stage cut puts real convolution work in every stage. Noise is
// off so the pair times the execution schedule, not the RNG.
func pipeBenchGraph(b *testing.B) *core.Graph {
	b.Helper()
	d, err := core.NewDeepCNN(core.NetworkConfig{
		PE:           core.PEConfig{Rows: 8, Cols: 8, DisableNoise: true},
		LearningRate: 0.1,
	}, []tensor.Conv2DSpec{
		{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1},
		{InC: 4, InH: 8, InW: 8, OutC: 6, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1},
		{InC: 6, InH: 8, InW: 8, OutC: 6, KH: 3, KW: 3,
			StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Groups: 1},
		{InC: 6, InH: 4, InW: 4, OutC: 8, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1},
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	return d.Graph
}

// BenchmarkDeepCNNBatchSequential streams pipeBenchBatch-sample batches
// through the sequential batched forward path — the reference side of the
// ≥1.4× pipelined-execution gate.
func BenchmarkDeepCNNBatchSequential(b *testing.B) {
	g := pipeBenchGraph(b)
	xs := benchInput(pipeBenchBatch*g.InputSize(), 13)
	var dst []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = g.ForwardBatchInto(dst, xs, pipeBenchBatch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*pipeBenchBatch/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkDeepCNNBatchPipelined streams the same batches through a
// 4-stage pipeline over the same graph shape: each stage owns a contiguous
// node span on its own simulated chip and micro-batches flow through
// double-buffered boundaries, so stage k computes micro-batch b while
// stage k+1 computes b−1. The fast side of the ≥1.4× gate (recorded but
// waived below four CPUs, where four stages cannot actually overlap).
func BenchmarkDeepCNNBatchPipelined(b *testing.B) {
	g := pipeBenchGraph(b)
	cuts, err := dataflow.PlanStages(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewPipeline(g, cuts, 0)
	if err != nil {
		b.Fatal(err)
	}
	xs := benchInput(pipeBenchBatch*g.InputSize(), 13)
	var dst []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = p.ForwardBatchPipelined(dst, xs, pipeBenchBatch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*pipeBenchBatch/b.Elapsed().Seconds(), "samples/sec")
}
